"""N-worker lease-race stress: one store, a fleet of worker processes.

Satellite invariants for the job engine under real concurrency: with
four worker processes draining one shared root at once, no job is ever
claimed by two workers (the claim critical section is an ``O_EXCL``
lock), no job runs twice to completion, a pre-made orphan (SIGKILLed
worker, expired lease) is adopted exactly once, and every job's contig
digest is bit-identical to an uncontended run of the same spec.
"""

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.pipeline import Pipeline, PipelineConfig
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.service import KILL_AFTER_ENV, JobService

CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}

#: genome seeds for the job mix; 51 appears twice so the fleet also
#: exercises concurrent cache sharing between identical specs
JOB_SEEDS = (51, 52, 53, 51, 54)

ORPHAN_TTL = 0.5      # the killed worker's lease must expire quickly
FLEET_TTL = 120.0     # fleet leases must NOT expire mid-run under load


def _source(seed: int) -> dict:
    return {
        "kind": "simulate",
        "length": 2500,
        "seed": seed,
        "read_length": 350,
        "stride": 140,
    }


def _driver(lease_ttl: float) -> str:
    return (
        "import sys\n"
        "from repro.service import JobService\n"
        f"JobService(sys.argv[1], lease_ttl={lease_ttl}).run_worker()\n"
    )


def _env():
    env = dict(os.environ)
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
    env.pop(KILL_AFTER_ENV, None)
    return env


@pytest.fixture(scope="module")
def reference_digests():
    digests = {}
    for seed in set(JOB_SEEDS):
        src = _source(seed)
        reads = tile_reads(
            make_genome(GenomeSpec(length=src["length"], seed=src["seed"])),
            src["read_length"],
            src["stride"],
        ).reads
        digests[seed] = Pipeline.default().run(
            reads, PipelineConfig(**CFG)
        ).contig_digest()
    return digests


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)
class TestWorkerFleet:
    def test_fleet_races_cleanly_and_adopts_orphan_once(
        self, tmp_path, reference_digests
    ):
        svc = JobService(tmp_path, lease_ttl=ORPHAN_TTL)
        # the orphan-to-be goes in first so the doomed worker claims it
        orphan_id = svc.submit(_source(51), CFG, name="orphan")
        job_ids = [orphan_id] + [
            svc.submit(_source(seed), CFG) for seed in JOB_SEEDS[1:]
        ]

        env = _env()
        env[KILL_AFTER_ENV] = "Alignment"
        doomed = subprocess.run(
            [sys.executable, "-c", _driver(ORPHAN_TTL), str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=180,
        )
        assert doomed.returncode == -signal.SIGKILL, doomed.stderr
        assert svc.status(orphan_id).state == "running"
        time.sleep(ORPHAN_TTL + 0.2)

        # four workers, one queue, no coordination beyond the store.
        # Their long lease TTL means a slow stage can't look like a dead
        # worker, so the only adoptable job is the real orphan.
        fleet = [
            subprocess.Popen(
                [sys.executable, "-c", _driver(FLEET_TTL), str(tmp_path)],
                env=_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(4)
        ]
        for proc in fleet:
            _, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err

        for job_id, seed in zip(job_ids, JOB_SEEDS):
            record = svc.status(job_id)
            assert record.state == "done", (job_id, record.error)
            counts = Counter(e["event"] for e in svc.events(job_id))
            # ran to completion exactly once...
            assert counts["done"] == 1, (job_id, counts)
            if job_id == orphan_id:
                # ...claimed once by the doomed worker, adopted exactly
                # once by the fleet
                assert counts["claimed"] == 1, counts
                assert counts["adopted"] == 1, counts
                assert record.attempts == 2
            else:
                assert counts["claimed"] == 1, (job_id, counts)
                assert counts["adopted"] == 0, (job_id, counts)
                assert record.attempts == 1
            # bit-identical to the uncontended reference run
            assert svc.result(job_id)["contig_digest"] == \
                reference_digests[seed], job_id

        # each stage of each job executed (or loaded) exactly once per
        # completing attempt: starts never exceed one per stage for the
        # fleet jobs (the orphan re-runs post-kill stages on adoption)
        for job_id in job_ids[1:]:
            starts = Counter(
                e["stage"] for e in svc.events(job_id)
                if e["event"] == "stage_start"
            )
            assert all(n == 1 for n in starts.values()), (job_id, starts)

        # the fleet went home: no leases, no pins, no stray claim locks
        assert svc.cache.pinned_files() == set()
        assert not list(Path(svc.store.root).glob("*.claim.lock"))
        for job_id in job_ids:
            assert svc.status(job_id).lease is None
