"""Unit and property tests for DNA primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.seq import dna

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestCodec:
    def test_encode_known(self):
        assert list(dna.encode("ACGT")) == [0, 1, 2, 3]

    def test_encode_lowercase(self):
        assert list(dna.encode("acgt")) == [0, 1, 2, 3]

    def test_decode_known(self):
        assert dna.decode(np.array([3, 2, 1, 0], dtype=np.uint8)) == "TGCA"

    def test_invalid_character(self):
        with pytest.raises(SequenceError):
            dna.encode("ACGN")

    def test_invalid_code(self):
        with pytest.raises(SequenceError):
            dna.decode(np.array([4], dtype=np.uint8))

    def test_empty(self):
        assert dna.decode(dna.encode("")) == ""

    @given(dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, s):
        assert dna.decode(dna.encode(s)) == s


class TestComplement:
    def test_complement_pairs(self):
        """A<->T and C<->G (Watson-Crick)."""
        assert dna.decode(dna.complement(dna.encode("ACGT"))) == "TGCA"

    def test_revcomp_paper_example(self):
        """§2: v = ATTCG has reverse complement CGAAT."""
        assert dna.revcomp_str("ATTCG") == "CGAAT"

    @given(dna_strings)
    @settings(max_examples=50, deadline=None)
    def test_property_revcomp_involution(self, s):
        codes = dna.encode(s)
        assert np.array_equal(dna.revcomp(dna.revcomp(codes)), codes)

    @given(dna_strings, dna_strings)
    @settings(max_examples=30, deadline=None)
    def test_property_revcomp_antihomomorphism(self, a, b):
        """revcomp(a + b) == revcomp(b) + revcomp(a)."""
        assert dna.revcomp_str(a + b) == dna.revcomp_str(b) + dna.revcomp_str(a)


class TestRandom:
    def test_gc_content_respected(self):
        rng = np.random.default_rng(0)
        codes = dna.random_codes(rng, 100_000, gc=0.7)
        gc = np.isin(codes, [1, 2]).mean()
        assert abs(gc - 0.7) < 0.02

    def test_invalid_gc(self):
        with pytest.raises(SequenceError):
            dna.random_codes(np.random.default_rng(0), 10, gc=1.5)
