"""Unit tests for the local COO format."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import LocalCoo, segment_starts
from repro.sparse.types import OVERLAP_DTYPE


def small():
    return LocalCoo(
        (4, 5),
        np.array([0, 1, 1, 3]),
        np.array([2, 0, 4, 3]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestConstruction:
    def test_basic_properties(self):
        m = small()
        assert m.nnz == 4
        assert m.shape == (4, 5)
        assert m.dtype == np.float64

    def test_out_of_range_rejected(self):
        with pytest.raises(SparseFormatError):
            LocalCoo((2, 2), np.array([2]), np.array([0]), np.array([1.0]))
        with pytest.raises(SparseFormatError):
            LocalCoo((2, 2), np.array([0]), np.array([-1]), np.array([1.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SparseFormatError):
            LocalCoo((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_empty(self):
        m = LocalCoo.empty((3, 3), np.dtype(np.int64))
        assert m.nnz == 0
        assert m.dtype == np.int64

    def test_from_dense_roundtrip(self):
        dense = np.array([[0, 1.5], [2.5, 0]])
        m = LocalCoo.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_structured_payload_supported(self):
        vals = np.zeros(2, dtype=OVERLAP_DTYPE)
        m = LocalCoo((3, 3), np.array([0, 1]), np.array([1, 2]), vals)
        assert m.dtype == OVERLAP_DTYPE
        with pytest.raises(SparseFormatError):
            m.to_dense()


class TestTransforms:
    def test_transpose_swaps(self):
        m = small().transpose()
        assert m.shape == (5, 4)
        assert np.array_equal(m.rows, small().cols)

    def test_sorted_by_row_then_col(self):
        m = small().sorted_by("row")
        keys = m.rows * m.shape[1] + m.cols
        assert np.all(np.diff(keys) >= 0)

    def test_sorted_by_col(self):
        m = small().sorted_by("col")
        keys = m.cols * m.shape[0] + m.rows
        assert np.all(np.diff(keys) >= 0)

    def test_sorted_invalid_order(self):
        with pytest.raises(ValueError):
            small().sorted_by("diag")

    def test_dedupe_sums(self):
        m = LocalCoo(
            (2, 2),
            np.array([0, 0, 1]),
            np.array([1, 1, 0]),
            np.array([1.0, 2.0, 5.0]),
        )
        d = m.deduped(lambda v, s: np.add.reduceat(v, s))
        assert d.nnz == 2
        dense = d.to_dense()
        assert dense[0, 1] == 3.0 and dense[1, 0] == 5.0

    def test_dedupe_noop_when_unique(self):
        m = small()
        d = m.deduped(lambda v, s: np.add.reduceat(v, s))
        assert d.nnz == m.nnz

    def test_select_mask(self):
        m = small().select(np.array([True, False, True, False]))
        assert m.nnz == 2
        assert np.array_equal(m.rows, [0, 1])

    def test_select_bad_mask(self):
        with pytest.raises(SparseFormatError):
            small().select(np.array([True]))

    def test_map_vals_receives_coords(self):
        m = small()
        out = m.map_vals(lambda v, r, c: v + r * 10 + c)
        assert np.allclose(out.vals, m.vals + m.rows * 10 + m.cols)

    def test_map_vals_must_preserve_nnz(self):
        with pytest.raises(SparseFormatError):
            small().map_vals(lambda v, r, c: v[:1])

    def test_counts(self):
        m = small()
        assert list(m.row_counts()) == [1, 2, 0, 1]
        assert list(m.col_counts()) == [1, 0, 1, 1, 1]

    def test_copy_is_independent(self):
        m = small()
        c = m.copy()
        c.vals[0] = 99.0
        assert m.vals[0] == 1.0


class TestSegmentStarts:
    def test_basic(self):
        keys = np.array([1, 1, 2, 5, 5, 5])
        assert list(segment_starts(keys)) == [0, 2, 3]

    def test_empty(self):
        assert segment_starts(np.empty(0, dtype=np.int64)).size == 0

    def test_all_unique(self):
        keys = np.array([1, 2, 3])
        assert list(segment_starts(keys)) == [0, 1, 2]
