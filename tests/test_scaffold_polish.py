"""Tests for pileup-consensus polishing (paper §7 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembly import Contig
from repro.errors import PipelineError
from repro.scaffold import PolishConfig, polish_contigs
from repro.seq import dna


def genome_of(length, seed=0):
    return dna.random_codes(np.random.default_rng(seed), length)


def tiles(genome, read_len, stride):
    return [
        genome[i : i + read_len].copy()
        for i in range(0, genome.size - read_len + 1, stride)
    ]


def corrupt(codes, positions, rng=None):
    out = codes.copy()
    out[positions] = (out[positions] + 1) % 4
    return out


class TestPolishBasics:
    def test_clean_contig_unchanged(self):
        g = genome_of(1500, seed=1)
        res = polish_contigs([g], tiles(g, 400, 100))
        assert res.total_changed == 0
        assert np.array_equal(res.contigs[0].codes, g)

    def test_interior_errors_corrected(self):
        g = genome_of(1500, seed=2)
        bad = corrupt(g, np.array([400, 700, 1000]))
        res = polish_contigs([bad], tiles(g, 400, 100))
        assert res.total_changed == 3
        assert np.array_equal(res.contigs[0].codes, g)

    def test_low_depth_columns_keep_original(self):
        """Depth-1 regions cannot outvote the contig base: by design."""
        g = genome_of(1000, seed=3)
        # single read covering [0, 400): everything else is depth 0
        bad = corrupt(g, np.array([50, 800]))
        res = polish_contigs([bad], [g[0:400].copy()], PolishConfig(min_depth=2))
        # neither error is corrected: depth 1 at 50, depth 0 at 800
        assert res.total_changed == 0
        assert res.stats[0].low_depth_columns == 1000

    def test_errors_in_reads_do_not_corrupt_contig(self):
        """Minority read errors are outvoted by the clean majority."""
        g = genome_of(1200, seed=4)
        reads = tiles(g, 400, 100)
        rng = np.random.default_rng(0)
        for r in reads[::3]:  # every third read gets one error
            p = int(rng.integers(0, r.size))
            r[p] = (r[p] + 1) % 4
        res = polish_contigs([g], reads, PolishConfig(min_depth=3))
        assert np.array_equal(res.contigs[0].codes, g)

    def test_majority_vote_at_exact_depth_boundary(self):
        g = genome_of(600, seed=5)
        bad = corrupt(g, np.array([300]))
        # exactly two clean reads cover position 300
        reads = [g[100:500].copy(), g[200:600].copy()]
        res = polish_contigs([bad], reads, PolishConfig(min_depth=2))
        assert np.array_equal(res.contigs[0].codes, g)


class TestStrandsAndProvenance:
    def test_reverse_strand_reads_vote_correctly(self):
        g = genome_of(1200, seed=6)
        bad = corrupt(g, np.array([600]))
        reads = [
            dna.revcomp(r) if i % 2 else r
            for i, r in enumerate(tiles(g, 400, 100))
        ]
        res = polish_contigs([bad], reads)
        assert np.array_equal(res.contigs[0].codes, g)

    def test_read_path_restricts_candidates(self):
        g = genome_of(800, seed=7)
        covering = [g[0:500].copy(), g[300:800].copy()]
        unrelated = [genome_of(500, seed=99)]
        contig = Contig(codes=g.copy(), read_path=[0, 1], orientations=[1, 1])
        res = polish_contigs([contig], covering + unrelated)
        assert res.stats[0].reads_used == 2

    def test_unrelated_reads_skipped_by_anchor_filter(self):
        g = genome_of(800, seed=8)
        reads = tiles(g, 400, 200) + [genome_of(400, seed=100)]
        res = polish_contigs([g], reads)
        assert res.stats[0].reads_skipped == 1
        assert np.array_equal(res.contigs[0].codes, g)

    def test_provenance_metadata_preserved(self):
        g = genome_of(600, seed=9)
        contig = Contig(
            codes=g.copy(),
            read_path=[3, 7],
            orientations=[1, -1],
            circular=True,
            truncated=True,
        )
        res = polish_contigs([contig], [g[0:400].copy(), g[200:600].copy()])
        out = res.contigs[0]
        assert out.read_path == [3, 7]
        assert out.orientations == [1, -1]
        assert out.circular and out.truncated


class TestRoundsAndConvergence:
    def test_polish_is_idempotent(self):
        g = genome_of(1200, seed=10)
        bad = corrupt(g, np.array([300, 900]))
        reads = tiles(g, 400, 100)
        once = polish_contigs([bad], reads)
        twice = polish_contigs([once.contigs[0].codes], reads)
        assert twice.total_changed == 0

    def test_multi_round_converges(self):
        g = genome_of(1200, seed=11)
        bad = corrupt(g, np.array([500]))
        res = polish_contigs(
            [bad], tiles(g, 400, 100), PolishConfig(rounds=3)
        )
        assert np.array_equal(res.contigs[0].codes, g)


class TestInputsAndValidation:
    def test_empty_contig_list(self):
        res = polish_contigs([], [genome_of(100)])
        assert res.contigs == [] and res.stats == []

    def test_contig_shorter_than_k_passthrough(self):
        tiny = genome_of(8, seed=12)
        res = polish_contigs([tiny], [genome_of(100)], PolishConfig(k=15))
        assert np.array_equal(res.contigs[0].codes, tiny)
        assert res.total_changed == 0

    def test_readset_like_object_accepted(self):
        class FakeReadSet:
            def __init__(self, reads):
                self.reads = reads

        g = genome_of(800, seed=13)
        res = polish_contigs([g], FakeReadSet(tiles(g, 400, 100)))
        assert res.total_changed == 0

    @pytest.mark.parametrize(
        "kwargs",
        [dict(k=0), dict(k=32), dict(min_anchors=0), dict(min_depth=0), dict(rounds=0)],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(PipelineError):
            polish_contigs([], [], PolishConfig(**kwargs))

    def test_stats_fields_populated(self):
        g = genome_of(1000, seed=14)
        res = polish_contigs([g], tiles(g, 400, 100))
        s = res.stats[0]
        assert s.length == 1000
        assert s.reads_used > 0
        assert s.mean_depth > 1.0
        assert res.wall_seconds > 0


class TestInPipelinePolish:
    """The distributed polishing phase: each rank polishes its contigs
    against the reads the sequence exchange placed on it."""

    @pytest.fixture(scope="class")
    def noisy_reads(self):
        from repro.seq import GenomeSpec, make_genome, sample_reads

        genome = make_genome(GenomeSpec(length=6000, seed=4))
        reads = sample_reads(
            genome, depth=18, mean_length=450, rng=5,
            error_rate=0.004, error_mix=(1.0, 0.0, 0.0),
        )
        return genome, reads

    def run(self, reads, polish, nprocs=4):
        from repro.pipeline import PipelineConfig, run_pipeline

        return run_pipeline(
            reads,
            PipelineConfig(nprocs=nprocs, k=21, end_margin=20, polish=polish),
        )

    def _mismatches(self, result, genome):
        from repro.quality import evaluate_assembly

        total = 0
        for c in result.contigs.contigs:
            rep = evaluate_assembly([c], genome, k=21)
            for b in rep.mappings[0].blocks:
                ref = genome[b.ref_start : b.ref_end]
                if b.strand == -1:
                    ref = dna.revcomp(ref)
                q = c.codes[b.contig_start : b.contig_end]
                n = min(ref.size, q.size)
                total += int((ref[:n] != q[:n]).sum())
        return total

    def test_polish_reduces_base_errors(self, noisy_reads):
        genome, reads = noisy_reads
        plain = self.run(reads, polish=False)
        polished = self.run(reads, polish=True)
        assert self._mismatches(polished, genome) < self._mismatches(
            plain, genome
        )

    def test_structure_unchanged(self, noisy_reads):
        _genome, reads = noisy_reads
        plain = self.run(reads, polish=False)
        polished = self.run(reads, polish=True)
        assert polished.contigs.count == plain.contigs.count
        for a, b in zip(plain.contigs.contigs, polished.contigs.contigs):
            assert a.read_path == b.read_path
            assert a.length == b.length

    def test_polish_stage_charged(self, noisy_reads):
        _genome, reads = noisy_reads
        polished = self.run(reads, polish=True)
        sub = polished.contig_substage_breakdown()
        assert "Polish" in sub and sub["Polish"] > 0
        plain = self.run(reads, polish=False)
        assert "Polish" not in plain.contig_substage_breakdown()

    @pytest.mark.parametrize("nprocs", [1, 9])
    def test_grid_invariance(self, noisy_reads, nprocs):
        _genome, reads = noisy_reads
        base = self.run(reads, polish=True, nprocs=4)
        other = self.run(reads, polish=True, nprocs=nprocs)
        a = sorted(c.sequence() for c in base.contigs.contigs)
        b = sorted(c.sequence() for c in other.contigs.contigs)
        assert a == b

    def test_error_free_input_is_noop(self):
        rng = np.random.default_rng(6)
        g = genome_of(2000, seed=20)
        reads = tiles(g, 250, 100)
        plain = self.run(reads, polish=False)
        polished = self.run(reads, polish=True)
        a = sorted(c.sequence() for c in plain.contigs.contigs)
        b = sorted(c.sequence() for c in polished.contigs.contigs)
        assert a == b


class TestPolishProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_errors=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_interior_errors_always_recovered(self, seed, n_errors):
        """With depth >= 3 everywhere in the interior, any small error set
        in the interior is corrected."""
        rng = np.random.default_rng(seed)
        g = genome_of(1600, seed=seed)
        reads = tiles(g, 400, 100)
        if n_errors:
            pos = rng.choice(np.arange(300, 1300), size=n_errors, replace=False)
            bad = corrupt(g, pos)
        else:
            bad = g.copy()
        res = polish_contigs([bad], reads, PolishConfig(min_depth=2))
        assert np.array_equal(res.contigs[0].codes[300:1300], g[300:1300])

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_polish_never_changes_length(self, seed):
        g = genome_of(900, seed=seed)
        bad = corrupt(g, np.array([450]))
        res = polish_contigs([bad], tiles(g, 300, 75))
        assert res.contigs[0].codes.size == g.size
