"""Tests for the console entry points (driven in-process)."""

import io

import numpy as np
import pytest

from repro.cli import assemble_main, quality_main, scaling_main
from repro.seq import dna, tile_reads
from repro.seq.fasta import read_fasta, write_fasta

FAST_PRESET = ["--preset", "c_elegans", "--scale", "100000"]


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A genome, its tiled reads FASTA, and a reference FASTA on disk."""
    tmp = tmp_path_factory.mktemp("cli")
    rng = np.random.default_rng(5)
    genome = dna.random_codes(rng, 3000)
    rs = tile_reads(genome, 250, 100)
    reads_fa = tmp / "reads.fa"
    ref_fa = tmp / "ref.fa"
    write_fasta(reads_fa, ((f"r{i}", r) for i, r in enumerate(rs.reads)))
    write_fasta(ref_fa, [("ref", genome)])
    return {"tmp": tmp, "genome": genome, "reads_fa": reads_fa, "ref_fa": ref_fa}


def run(main, argv):
    buf = io.StringIO()
    rc = main(argv, out=buf)
    return rc, buf.getvalue()


class TestAssembleCli:
    def test_fasta_input_end_to_end(self, workspace):
        out_fa = workspace["tmp"] / "contigs.fa"
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "-P", "4",
             "-o", str(out_fa)],
        )
        assert rc == 0
        assert "assembled 1 contigs" in text
        _, contigs = read_fasta(out_fa)
        assert len(contigs) == 1
        got = contigs[0]
        ref = workspace["genome"]
        assert np.array_equal(got, ref) or np.array_equal(got, dna.revcomp(ref))

    def test_align_batch_size_flag(self, workspace):
        out_fa = workspace["tmp"] / "contigs_bs.fa"
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "-P", "4",
             "--align-batch-size", "3", "-o", str(out_fa)],
        )
        assert rc == 0
        assert "assembled 1 contigs" in text

    def test_contig_engine_flag(self, workspace):
        """Both traversal engines assemble the same contig set."""
        seqs = {}
        for engine in ("scalar", "batch"):
            out_fa = workspace["tmp"] / f"contigs_{engine}.fa"
            rc, text = run(
                assemble_main,
                ["--fasta", str(workspace["reads_fa"]), "-k", "21", "-P", "4",
                 "--contig-engine", engine, "-o", str(out_fa)],
            )
            assert rc == 0
            assert "assembled 1 contigs" in text
            _, contigs = read_fasta(out_fa)
            seqs[engine] = contigs
        assert len(seqs["scalar"]) == len(seqs["batch"])
        for a, b in zip(seqs["scalar"], seqs["batch"]):
            assert np.array_equal(a, b)

    def test_executor_flag(self, workspace):
        """Both executor backends assemble bit-identical contig sets."""
        seqs = {}
        for executor in ("serial", "thread"):
            out_fa = workspace["tmp"] / f"contigs_{executor}.fa"
            rc, text = run(
                assemble_main,
                ["--fasta", str(workspace["reads_fa"]), "-k", "21", "-P", "4",
                 "--executor", executor, "-o", str(out_fa)],
            )
            assert rc == 0
            assert "assembled 1 contigs" in text
            _, contigs = read_fasta(out_fa)
            seqs[executor] = contigs
        assert len(seqs["serial"]) == len(seqs["thread"])
        for a, b in zip(seqs["serial"], seqs["thread"]):
            assert np.array_equal(a, b)

    def test_breakdown_lists_all_stages(self, workspace):
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "--breakdown"],
        )
        assert rc == 0
        for stage in ("CountKmer", "DetectOverlap", "Alignment",
                      "TrReduction", "ExtractContig"):
            assert stage in text

    def test_preset_with_quality(self):
        rc, text = run(
            assemble_main, FAST_PRESET + ["-P", "4", "--quality"]
        )
        assert rc == 0
        assert "quality: completeness=" in text

    def test_scaffold_and_polish_flags(self):
        rc, text = run(
            assemble_main, FAST_PRESET + ["--scaffold", "--polish"]
        )
        assert rc == 0
        assert "polish:" in text
        assert "scaffold:" in text

    def test_gap_fill_flag(self):
        rc, text = run(assemble_main, FAST_PRESET + ["--gap-fill"])
        assert rc == 0
        assert "gap-fill:" in text

    def test_stats_flag(self, workspace):
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "--stats"],
        )
        assert rc == 0
        assert "read N50" in text
        assert "k-mer depth estimate" in text

    def test_gfa_export(self, workspace):
        gfa = workspace["tmp"] / "graph.gfa"
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21",
             "--gfa", str(gfa)],
        )
        assert rc == 0
        lines = gfa.read_text().splitlines()
        assert lines[0] == "H\tVN:Z:1.0"
        assert any(l.startswith("L\t") for l in lines)
        assert any(l.startswith("P\t") for l in lines)

    def test_paf_export(self, workspace):
        paf = workspace["tmp"] / "overlaps.paf"
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21",
             "--paf", str(paf)],
        )
        assert rc == 0
        first = paf.read_text().splitlines()[0].split("\t")
        assert len(first) == 12
        assert first[4] in "+-"

    def test_memory_mode_low(self, workspace):
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21",
             "--memory-mode", "low"],
        )
        assert rc == 0
        assert "peak memory" in text

    def test_until_partial_run(self, workspace):
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21",
             "--until", "TrReduction", "--breakdown"],
        )
        assert rc == 0
        assert "partial run stopped after TrReduction" in text
        assert "assembled" not in text
        assert "TrReduction" in text

    def test_trace_prints_stage_lines(self, workspace):
        rc, text = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "--trace"],
        )
        assert rc == 0
        for stage in ("CountKmer", "ExtractContig"):
            assert f"[pipeline] {stage} ..." in text
            assert f"[pipeline] {stage} done" in text

    def test_checkpoint_then_resume(self, workspace, tmp_path):
        ckpt = tmp_path / "ckpt"
        argv = ["--fasta", str(workspace["reads_fa"]), "-k", "21",
                "--checkpoint-dir", str(ckpt)]
        rc, text1 = run(assemble_main, argv)
        assert rc == 0
        rc, text2 = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "--trace",
             "--resume-from", str(ckpt)],
        )
        assert rc == 0
        assert "[pipeline] CountKmer skipped (checkpoint)" in text2
        assert "assembled 1 contigs" in text2

    def test_resume_from_missing_dir_fails(self, workspace, capsys):
        rc, _ = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21",
             "--resume-from", "/does/not/exist"],
        )
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err

    def test_missing_fasta_fails_cleanly(self, capsys):
        rc, _ = run(assemble_main, ["--fasta", "/does/not/exist.fa"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_quality_without_preset_fails(self, workspace, capsys):
        rc, _ = run(
            assemble_main,
            ["--fasta", str(workspace["reads_fa"]), "-k", "21", "--quality"],
        )
        assert rc == 1
        assert "requires --preset" in capsys.readouterr().err

    def test_mutually_exclusive_inputs(self, workspace):
        with pytest.raises(SystemExit):
            assemble_main(
                ["--fasta", str(workspace["reads_fa"]), "--preset", "c_elegans"]
            )

    def test_input_required(self):
        with pytest.raises(SystemExit):
            assemble_main([])


class TestQualityCli:
    @pytest.fixture(scope="class")
    def contig_fa(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("qc")
        rng = np.random.default_rng(9)
        genome = dna.random_codes(rng, 2000)
        ref = tmp / "ref.fa"
        asm = tmp / "asm.fa"
        write_fasta(ref, [("ref", genome)])
        write_fasta(
            asm,
            [("c0", genome[:1200]), ("c1", genome[1100:])],
        )
        return asm, ref

    def test_basic_metrics(self, contig_fa):
        asm, ref = contig_fa
        rc, text = run(quality_main, [str(asm), str(ref), "-k", "21"])
        assert rc == 0
        assert "completeness=100.00%" in text
        assert "n50=" in text

    def test_per_contig_listing(self, contig_fa):
        asm, ref = contig_fa
        rc, text = run(
            quality_main, [str(asm), str(ref), "-k", "21", "--per-contig"]
        )
        assert rc == 0
        assert "contig_0:" in text and "contig_1:" in text

    def test_missing_file_fails_cleanly(self, contig_fa, capsys):
        _, ref = contig_fa
        rc, _ = run(quality_main, ["/nope.fa", str(ref)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_multi_sequence_reference_rejected(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        ref = tmp_path / "multi.fa"
        asm = tmp_path / "asm.fa"
        write_fasta(ref, [("a", dna.random_codes(rng, 100)),
                          ("b", dna.random_codes(rng, 100))])
        write_fasta(asm, [("c", dna.random_codes(rng, 100))])
        rc, _ = run(quality_main, [str(asm), str(ref)])
        assert rc == 1
        assert "multi-sequence" in capsys.readouterr().err


class TestScalingCli:
    def test_sweep_renders_tables(self):
        rc, text = run(
            scaling_main,
            FAST_PRESET + ["-P", "1", "4", "--breakdown"],
        )
        assert rc == 0
        assert "strong scaling" in text
        assert "efficiency" in text
        assert "runtime breakdown" in text

    def test_non_square_grid_rejected(self, capsys):
        rc, _ = run(scaling_main, ["-P", "3"])
        assert rc == 1
        assert "perfect square" in capsys.readouterr().err

    def test_machine_choice_validated(self):
        with pytest.raises(SystemExit):
            scaling_main(["--machine", "cray-1"])
