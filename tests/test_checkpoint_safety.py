"""Checkpoint-layer safety nets the job engine depends on.

Covers the PR's satellite fixes: crash-safe atomic saves, the TOCTOU gap
between ``has`` and ``load`` (evicted/torn checkpoints degrade to a
recompute, not a crash), and cross-process stability of the fingerprint
chain (the contract that makes the shared cache shareable at all).
"""

import json
import os
import subprocess
import sys
import types
from pathlib import Path

import pytest

from repro import CollectingObserver, Pipeline, PipelineConfig
from repro.pipeline import CheckpointLoadError, CheckpointStore
from repro.pipeline.checkpoint import base_fingerprint
from repro.pipeline.engine import Stage
from repro.seq import GenomeSpec, make_genome, tile_reads

GENOME = dict(length=2500, seed=51)
TILE = dict(read_length=350, stride=140)


@pytest.fixture(scope="module")
def reads():
    return tile_reads(
        make_genome(GenomeSpec(length=GENOME["length"], seed=GENOME["seed"])),
        TILE["read_length"],
        TILE["stride"],
    )


@pytest.fixture(scope="module")
def cfg():
    return PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5)


class TestCrashSafeSave:
    def test_failed_save_leaves_no_debris(self, tmp_path):
        """A write that dies mid-pickle must leave neither a torn target
        nor an orphaned temp file."""
        store = CheckpointStore(tmp_path)

        class Doomed(Stage):
            name = "Doomed"
            produces = ("x",)

        ctx = types.SimpleNamespace(artifacts={"x": lambda: None})  # unpicklable
        with pytest.raises(Exception):
            store.save("Doomed", "f" * 40, Doomed(), ctx, {})
        assert list(Path(tmp_path).iterdir()) == []

    def test_save_then_load_round_trips(self, tmp_path, reads, cfg):
        store = CheckpointStore(tmp_path)
        res = Pipeline.default().run(reads, cfg, checkpoint_store=store)
        assert len(store.entries()) == 5
        assert not list(Path(tmp_path).glob("*.tmp"))
        again = Pipeline.default().run(reads, cfg, checkpoint_store=store)
        assert again.stages_run == []
        assert again.contig_digest() == res.contig_digest()

    def test_helpers_nbytes_delete(self, tmp_path, reads, cfg):
        store = CheckpointStore(tmp_path)
        Pipeline.default().run(reads, cfg, checkpoint_store=store)
        entry = store.entries()[0]
        assert store.nbytes(entry.name) == entry.stat().st_size > 0
        assert store.delete(entry.name)
        assert not store.delete(entry.name)  # already gone
        assert store.nbytes(entry.name) == 0


class TestToctouFallback:
    def _checkpointed(self, tmp_path, reads, cfg):
        store = CheckpointStore(tmp_path)
        first = Pipeline.default().run(reads, cfg, checkpoint_store=store)
        return store, first

    def test_torn_checkpoint_falls_back_to_recompute(
        self, tmp_path, reads, cfg
    ):
        store, first = self._checkpointed(tmp_path, reads, cfg)
        victim = next(
            p for p in store.entries() if p.name.startswith("TrReduction")
        )
        victim.write_bytes(victim.read_bytes()[:50])  # torn mid-write
        obs = CollectingObserver()
        res = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_store=store
        )
        assert res.stages_run == ["TrReduction"]
        assert [s for s, _ in obs.notes] == ["TrReduction"]
        assert "recomputing" in obs.notes[0][1]
        assert res.contig_digest() == first.contig_digest()

    def test_vanished_between_has_and_load(self, tmp_path, reads, cfg):
        """Simulate an eviction racing the load: `has` says yes, the file
        is gone by the time `load` opens it."""
        store, first = self._checkpointed(tmp_path, reads, cfg)

        class RacingStore(CheckpointStore):
            def has(self, stage_name, fingerprint):
                present = super().has(stage_name, fingerprint)
                if present and stage_name == "Alignment":
                    os.unlink(self.path(stage_name, fingerprint))
                return present

        racing = RacingStore(tmp_path)
        obs = CollectingObserver()
        res = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_store=racing
        )
        assert res.stages_run == ["Alignment"]
        assert obs.skips == {
            "CountKmer": "checkpoint",
            "DetectOverlap": "checkpoint",
            "TrReduction": "checkpoint",
            "ExtractContig": "checkpoint",
        }
        assert res.contig_digest() == first.contig_digest()

    def test_load_commits_nothing_on_failure(self, tmp_path, reads, cfg):
        store, _ = self._checkpointed(tmp_path, reads, cfg)
        victim = next(
            p for p in store.entries() if p.name.startswith("CountKmer")
        )
        victim.write_bytes(b"garbage")
        pipe = Pipeline.default()
        ctx = pipe._build_context(reads, cfg, cfg.resolve_machine())
        stage = pipe.stages[0]
        fp = store.chain(base_fingerprint(cfg, ctx.store), stage, cfg)
        before = dict(ctx.artifacts)
        with pytest.raises(CheckpointLoadError):
            store.load(stage, fp, ctx)
        assert ctx.artifacts == before

    def test_version_mismatch_is_load_error(self, tmp_path, reads, cfg):
        import hashlib
        import pickle

        from repro.pipeline.checkpoint import CHECKPOINT_MAGIC

        store, _ = self._checkpointed(tmp_path, reads, cfg)
        victim = store.entries()[0]
        raw = victim.read_bytes()
        blob = pickle.loads(raw[len(CHECKPOINT_MAGIC) + 32:])
        blob["version"] = 999
        payload = pickle.dumps(blob)
        # a correctly-framed file with a stale version: passes the
        # integrity check, fails the version check
        victim.write_bytes(
            CHECKPOINT_MAGIC + hashlib.sha256(payload).digest() + payload
        )
        obs = CollectingObserver()
        res = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_store=store
        )
        assert res.contigs is not None
        assert len(obs.notes) == 1


class TestFingerprintStabilityAcrossProcesses:
    """The cross-job cache contract: the same (config, reads) pair must
    fingerprint byte-identically in a fresh interpreter."""

    SCRIPT = """
import json, sys
from repro.mpi import ProcGrid, SimWorld, zero_cost
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.checkpoint import base_fingerprint
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.seq.readstore import DistReadStore

cfg = PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5)
reads = tile_reads(make_genome(GenomeSpec(length={length}, seed={seed})),
                   {read_length}, {stride})
world = SimWorld(cfg.nprocs, zero_cost())
store = DistReadStore.from_global(ProcGrid(world), reads.reads)
fp = base_fingerprint(cfg, store)
chain = [fp]
ckpt = Pipeline.default().stages
from repro.pipeline.checkpoint import CheckpointStore
cs = CheckpointStore(".")
for stage in ckpt:
    fp = cs.chain(fp, stage, cfg)
    chain.append(fp)
print(json.dumps(chain))
"""

    def _chain_here(self, reads, cfg):
        from repro.mpi import ProcGrid, SimWorld, zero_cost
        from repro.seq.readstore import DistReadStore

        world = SimWorld(cfg.nprocs, zero_cost())
        store = DistReadStore.from_global(ProcGrid(world), reads.reads)
        fp = base_fingerprint(cfg, store)
        chain = [fp]
        cs = CheckpointStore(".")
        for stage in Pipeline.default().stages:
            fp = cs.chain(fp, stage, cfg)
            chain.append(fp)
        return chain

    def test_chain_identical_in_fresh_interpreter(self, reads, cfg):
        src_dir = Path(__file__).resolve().parent.parent / "src"
        script = self.SCRIPT.format(**GENOME, **TILE)
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        fresh = json.loads(proc.stdout)
        assert fresh == self._chain_here(reads, cfg)
        assert len(set(fresh)) == 6  # base + 5 distinct stage fingerprints

    def test_chain_sensitive_to_reads_and_config(self, reads, cfg):
        import dataclasses

        base = self._chain_here(reads, cfg)
        other_reads = tile_reads(
            make_genome(GenomeSpec(length=2500, seed=52)), 350, 140
        )
        assert self._chain_here(other_reads, cfg)[0] != base[0]
        changed = dataclasses.replace(cfg, partition_method="greedy")
        contig_only = self._chain_here(reads, changed)
        assert contig_only[:5] == base[:5]   # upstream chain untouched
        assert contig_only[5] != base[5]     # ExtractContig link moved
