"""Unit tests for the comm log, stage clock and timing report."""

import numpy as np
import pytest

from repro.mpi import CommEvent, CommLog, StageClock, TimingReport


def _event(op="alltoallv", stage="s", nbytes=100, t=0.5):
    return CommEvent(
        op=op, stage=stage, nprocs=4, total_bytes=nbytes,
        max_bytes=nbytes, messages=3, modeled_seconds=t,
    )


class TestCommLog:
    def test_aggregates_filterable(self):
        log = CommLog()
        log.record(_event(op="bcast", stage="a", nbytes=10))
        log.record(_event(op="alltoallv", stage="a", nbytes=20))
        log.record(_event(op="alltoallv", stage="b", nbytes=30))
        assert log.total_bytes() == 60
        assert log.total_bytes(op="alltoallv") == 50
        assert log.total_bytes(stage="a") == 30
        assert log.total_bytes(op="alltoallv", stage="b") == 30
        assert log.message_count() == 9
        assert log.bytes_by_op() == {"bcast": 10, "alltoallv": 50}
        assert log.bytes_by_stage() == {"a": 30, "b": 30}

    def test_clear(self):
        log = CommLog()
        log.record(_event())
        log.clear()
        assert len(log) == 0
        assert log.total_bytes() == 0


class TestStageClock:
    def test_stage_time_is_max_over_ranks(self):
        clock = StageClock(4)
        clock.charge_compute("x", 0, 1.0)
        clock.charge_compute("x", 1, 3.0)
        assert clock.stage_seconds("x") == 3.0

    def test_comm_charges_all_ranks(self):
        clock = StageClock(4)
        clock.charge_comm_all("x", 2.0)
        assert np.allclose(clock.per_rank_seconds("x"), 2.0)

    def test_comm_charges_subset(self):
        clock = StageClock(4)
        clock.charge_comm_all("x", 2.0, ranks=[1, 3])
        assert list(clock.per_rank_seconds("x")) == [0.0, 2.0, 0.0, 2.0]

    def test_compute_and_comm_separated(self):
        clock = StageClock(2)
        clock.charge_compute("x", 0, 1.0)
        clock.charge_comm_all("x", 0.5)
        assert clock.stage_compute_seconds("x") == 1.0
        assert clock.stage_comm_seconds("x") == 0.5
        assert clock.stage_seconds("x") == 1.5

    def test_total_sums_stage_makespans(self):
        clock = StageClock(2)
        clock.charge_compute("a", 0, 1.0)
        clock.charge_compute("b", 1, 2.0)
        assert clock.total_seconds() == 3.0

    def test_stage_order_preserved(self):
        clock = StageClock(1)
        clock.charge_compute("first", 0, 1.0)
        clock.charge_compute("second", 0, 1.0)
        assert clock.stages() == ["first", "second"]

    def test_merge_stage(self):
        clock = StageClock(2)
        clock.charge_compute("sub", 0, 1.0)
        clock.charge_comm_all("sub", 0.5)
        clock.charge_compute("main", 1, 2.0)
        clock.merge_stage("sub", "main")
        assert "sub" not in clock.stages()
        assert clock.stage_seconds("main") == pytest.approx(2.5)

    def test_invalid_charges(self):
        clock = StageClock(2)
        with pytest.raises(IndexError):
            clock.charge_compute("x", 5, 1.0)
        with pytest.raises(ValueError):
            clock.charge_compute("x", 0, -1.0)
        with pytest.raises(ValueError):
            clock.charge_comm_all("x", -1.0)
        with pytest.raises(ValueError):
            StageClock(0)


class TestTimingReport:
    def test_from_clock_snapshot(self):
        clock = StageClock(2)
        clock.charge_compute("a", 0, 1.0)
        clock.charge_comm_all("a", 0.25)
        report = TimingReport.from_clock(clock, "test-machine", comm_bytes=42)
        assert report.machine == "test-machine"
        assert report.stage_seconds["a"] == pytest.approx(1.25)
        assert report.stage_comm_seconds["a"] == pytest.approx(0.25)
        assert report.total_seconds == pytest.approx(1.25)
        assert report.comm_bytes == 42

    def test_render_mentions_all_stages(self):
        clock = StageClock(1)
        clock.charge_compute("alpha", 0, 1.0)
        clock.charge_compute("beta", 0, 2.0)
        text = TimingReport.from_clock(clock, "m").render()
        assert "alpha" in text and "beta" in text
        assert "m" in text


class TestImbalanceAndPercentiles:
    def _skewed_clock(self):
        clock = StageClock(4)
        for rank, sec in enumerate((1.0, 1.0, 1.0, 5.0)):
            clock.charge_compute("x", rank, sec)
        return clock

    def test_stage_imbalance_max_over_mean(self):
        clock = self._skewed_clock()
        assert clock.stage_imbalance("x") == pytest.approx(5.0 / 2.0)

    def test_balanced_stage_is_one(self):
        clock = StageClock(4)
        clock.charge_comm_all("x", 2.0)
        assert clock.stage_imbalance("x") == pytest.approx(1.0)

    def test_uncharged_stage_is_one(self):
        assert StageClock(4).stage_imbalance("never") == 1.0

    def test_comm_counts_toward_imbalance(self):
        clock = StageClock(2)
        clock.charge_compute("x", 0, 1.0)
        clock.charge_comm_all("x", 1.0, ranks=[0])
        # rank 0 carries all 2.0s, rank 1 none: max/mean = 2.0
        assert clock.stage_imbalance("x") == pytest.approx(2.0)

    def test_percentiles(self):
        clock = self._skewed_clock()
        assert clock.per_rank_percentile("x", 0) == 1.0
        assert clock.per_rank_percentile("x", 50) == 1.0
        assert clock.per_rank_percentile("x", 100) == 5.0

    def test_percentile_range_checked(self):
        clock = self._skewed_clock()
        with pytest.raises(ValueError, match="percentile"):
            clock.per_rank_percentile("x", 101)
        with pytest.raises(ValueError, match="percentile"):
            clock.per_rank_percentile("x", -0.1)

    def test_uncharged_stage_percentile_is_zero(self):
        assert StageClock(4).per_rank_percentile("never", 99) == 0.0
