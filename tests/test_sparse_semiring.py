"""Unit tests for the semiring abstraction and the pipeline semirings."""

import numpy as np
import pytest

from repro.sparse import (
    DIRMIN_DTYPE,
    KMER_POS_DTYPE,
    SEED_DTYPE,
    SUFFIX_INF,
    arithmetic_semiring,
    boolean_semiring,
    count_semiring,
    dirmin_semiring,
    minplus_semiring,
    seed_semiring,
)
from repro.sparse.types import OVERLAP_DTYPE


class TestNumericSemirings:
    def test_arithmetic(self):
        sr = arithmetic_semiring()
        prod = sr.multiply(np.array([2.0, 3.0]), np.array([4.0, 5.0]))
        assert list(prod) == [8.0, 15.0]
        red = sr.add_reduce(np.array([1.0, 2.0, 3.0]), np.array([0, 2]))
        assert list(red) == [3.0, 3.0]

    def test_boolean(self):
        sr = boolean_semiring()
        prod = sr.multiply(
            np.array([1, 1, 0], dtype=np.uint8), np.array([1, 0, 1], dtype=np.uint8)
        )
        assert list(prod) == [1, 0, 0]
        red = sr.add_reduce(np.array([0, 1, 0], dtype=np.uint8), np.array([0, 2]))
        assert list(red) == [1, 0]

    def test_count(self):
        sr = count_semiring()
        prod = sr.multiply(np.zeros(3), np.zeros(3))
        assert list(prod) == [1, 1, 1]
        red = sr.add_reduce(np.ones(4, dtype=np.int64), np.array([0, 1]))
        assert list(red) == [1, 3]

    def test_minplus(self):
        sr = minplus_semiring()
        prod = sr.multiply(np.array([3, 4]), np.array([10, 20]))
        assert list(prod) == [13, 24]
        red = sr.add_reduce(np.array([5, 2, 9]), np.array([0, 2]))
        assert list(red) == [2, 9]
        assert sr.valid_mask is not None


class TestSeedSemiring:
    def _kv(self, pos, orient):
        out = np.zeros(len(pos), dtype=KMER_POS_DTYPE)
        out["pos"] = pos
        out["orient"] = orient
        return out

    def test_multiply_builds_seeds(self):
        sr = seed_semiring()
        a = self._kv([3, 7], [1, 1])
        b = self._kv([10, 2], [1, -1])
        seeds = sr.multiply(a, b)
        assert seeds.dtype == SEED_DTYPE
        assert list(seeds["count"]) == [1, 1]
        assert list(seeds["pos_a"]) == [3, 7]
        assert list(seeds["pos_b"]) == [10, 2]
        assert list(seeds["same_strand"]) == [1, 0]

    def test_multiply_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            seed_semiring().multiply(np.zeros(2), np.zeros(2))

    def test_add_counts_and_keeps_min_pos_a_seed(self):
        sr = seed_semiring()
        seeds = np.zeros(4, dtype=SEED_DTYPE)
        seeds["count"] = 1
        seeds["pos_a"] = [9, 2, 5, 1]
        seeds["pos_b"] = [90, 20, 50, 10]
        # two segments: [0:3), [3:4)
        red = sr.add_reduce(seeds, np.array([0, 3]))
        assert list(red["count"]) == [3, 1]
        assert red["pos_a"][0] == 2 and red["pos_b"][0] == 20
        assert red["pos_a"][1] == 1


class TestDirminSemiring:
    def _edges(self, dirs, suffixes):
        out = np.zeros(len(dirs), dtype=OVERLAP_DTYPE)
        out["dir"] = dirs
        out["suffix"] = suffixes
        return out

    def test_compatible_walk_composes(self):
        """i->k with dir (1,0): enter k at prefix; k->j must exit via
        suffix (src bit 1)."""
        sr = dirmin_semiring()
        a = self._edges([0b10], [100])
        b = self._edges([0b10], [50])
        out = sr.multiply(a, b)
        assert out.dtype == DIRMIN_DTYPE
        composed_dir = 0b10  # (src of a, dst of b) = (1, 0)
        assert out["minsuf"][0, composed_dir] == 150
        others = [d for d in range(4) if d != composed_dir]
        assert all(out["minsuf"][0, d] == SUFFIX_INF for d in others)

    def test_incompatible_walk_records_nothing(self):
        """Enter k at prefix (dst bit 0) then exit via prefix (src bit 0):
        invalid."""
        sr = dirmin_semiring()
        a = self._edges([0b10], [100])  # dst bit 0: enter k's prefix
        b = self._edges([0b00], [50])   # src bit 0: exit k's prefix again
        out = sr.multiply(a, b)
        assert np.all(out["minsuf"] == SUFFIX_INF)

    def test_add_takes_per_direction_min(self):
        sr = dirmin_semiring()
        vals = np.zeros(2, dtype=DIRMIN_DTYPE)
        vals["minsuf"][:] = SUFFIX_INF
        vals["minsuf"][0, 2] = 100
        vals["minsuf"][1, 2] = 60
        red = sr.add_reduce(vals, np.array([0]))
        assert red["minsuf"][0, 2] == 60

    def test_valid_mask_filters_all_inf(self):
        sr = dirmin_semiring()
        vals = np.zeros(2, dtype=DIRMIN_DTYPE)
        vals["minsuf"][:] = SUFFIX_INF
        vals["minsuf"][1, 0] = 5
        assert list(sr.valid_mask(vals)) == [False, True]

    def test_all_direction_pairs(self):
        """Exhaustive: composition valid iff dst-bit(a) != src-bit(b)."""
        sr = dirmin_semiring()
        for d1 in range(4):
            for d2 in range(4):
                a = self._edges([d1], [10])
                b = self._edges([d2], [20])
                out = sr.multiply(a, b)
                valid = (d1 & 1) != ((d2 >> 1) & 1)
                if valid:
                    cd = (d1 & 2) | (d2 & 1)
                    assert out["minsuf"][0, cd] == 30, (d1, d2)
                else:
                    assert np.all(out["minsuf"] == SUFFIX_INF), (d1, d2)
