"""Unit tests for CSC/CSR and DCSC local formats."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import Dcsc, LocalCoo, LocalCsc, LocalCsr


def sample_coo():
    # 5x5, pattern-symmetric path 0-1-2-3 plus isolated 4
    rows = np.array([0, 1, 1, 2, 2, 3])
    cols = np.array([1, 0, 2, 1, 3, 2])
    vals = np.arange(6, dtype=np.int64)
    return LocalCoo((5, 5), rows, cols, vals)


class TestCsc:
    def test_from_coo_roundtrip(self):
        coo = sample_coo()
        csc = LocalCsc.from_coo(coo)
        back = csc.to_coo()
        a = sorted(zip(coo.rows, coo.cols, coo.vals))
        b = sorted(zip(back.rows, back.cols, back.vals))
        assert a == b

    def test_degrees_match_column_counts(self):
        csc = LocalCsc.from_coo(sample_coo())
        assert list(csc.degrees()) == [1, 2, 2, 1, 0]

    def test_degree_is_jc_difference(self):
        """The paper's degree test: JC[i+1] - JC[i]."""
        csc = LocalCsc.from_coo(sample_coo())
        for i in range(5):
            assert csc.degree(i) == csc.jc[i + 1] - csc.jc[i]

    def test_slice_indices(self):
        csc = LocalCsc.from_coo(sample_coo())
        assert sorted(csc.slice_indices(1)) == [0, 2]
        assert list(csc.slice_indices(4)) == []

    def test_slice_vals_align_with_indices(self):
        csc = LocalCsc.from_coo(sample_coo())
        idx = csc.slice_indices(2)
        vals = csc.slice_vals(2)
        assert len(idx) == len(vals) == 2

    def test_validation(self):
        with pytest.raises(SparseFormatError):
            LocalCsc((2, 2), np.array([0, 1]), np.array([0]), np.array([1]))
        with pytest.raises(SparseFormatError):
            LocalCsc((2, 2), np.array([1, 0, 1]), np.array([0]), np.array([1]))


class TestCsr:
    def test_csr_compresses_rows(self):
        csr = LocalCsr.from_coo(sample_coo())
        assert list(csr.degrees()) == [1, 2, 2, 1, 0]
        assert sorted(csr.slice_indices(1)) == [0, 2]

    def test_csr_csc_agree_on_symmetric_pattern(self):
        coo = sample_coo()
        csr = LocalCsr.from_coo(coo)
        csc = LocalCsc.from_coo(coo)
        assert list(csr.degrees()) == list(csc.degrees())


class TestDcsc:
    def test_from_coo_skips_empty_columns(self):
        dcsc = Dcsc.from_coo(sample_coo())
        assert list(dcsc.jc) == [0, 1, 2, 3]  # column 4 empty
        assert dcsc.ncols_nonempty == 4
        assert dcsc.nnz == 6

    def test_roundtrip(self):
        coo = sample_coo()
        back = Dcsc.from_coo(coo).to_coo()
        a = sorted(zip(coo.rows, coo.cols, coo.vals))
        b = sorted(zip(back.rows, back.cols, back.vals))
        assert a == b

    def test_to_csc_shares_ir_and_val(self):
        """§4.4: only column pointers uncompress; ir and val stay intact."""
        dcsc = Dcsc.from_coo(sample_coo())
        csc = dcsc.to_csc()
        assert csc.ir is dcsc.ir
        assert csc.val is dcsc.val

    def test_to_csc_equivalent(self):
        coo = sample_coo()
        via_dcsc = Dcsc.from_coo(coo).to_csc()
        direct = LocalCsc.from_coo(coo)
        assert np.array_equal(via_dcsc.jc, direct.jc)
        assert np.array_equal(via_dcsc.ir, direct.ir)

    def test_hypersparse_memory_advantage(self):
        """DCSC footprint must not scale with the column count."""
        n = 10_000
        coo = LocalCoo(
            (n, n), np.array([5]), np.array([7]), np.array([1.0])
        )
        dcsc = Dcsc.from_coo(coo)
        csc_pointer_bytes = (n + 1) * 8
        assert dcsc.memory_bytes() < csc_pointer_bytes / 100

    def test_empty_matrix(self):
        dcsc = Dcsc.from_coo(LocalCoo.empty((4, 4), np.dtype(np.int64)))
        assert dcsc.nnz == 0
        assert dcsc.to_csc().degrees().sum() == 0

    def test_validation(self):
        with pytest.raises(SparseFormatError):
            Dcsc(
                (2, 2),
                np.array([0, 0]),  # not strictly increasing
                np.array([0, 1, 2]),
                np.array([0, 1]),
                np.array([1, 2]),
            )
