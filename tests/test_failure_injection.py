"""Failure-injection and degenerate-input tests across the pipeline.

A production assembler sees pathological inputs constantly: empty files,
reads shorter than k, homopolymer runs, duplicated reads, invalid base
codes.  Every case here must either produce a clean, documented result or
raise the library's own error types -- never crash with an internal
IndexError or produce silently wrong output.
"""

import numpy as np
import pytest

from repro.errors import PipelineError, SequenceError
from repro.kmer.codec import encode_kmers
from repro.mpi import ProcGrid, SimWorld, zero_cost
from repro.pipeline import PipelineConfig, run_pipeline
from repro.scaffold import polish_contigs, scaffold_contigs
from repro.seq import dna, tile_reads
from repro.seq.fasta import read_fasta
from repro.seq.readstore import DistReadStore


def run(reads, **kwargs):
    cfg = PipelineConfig(nprocs=kwargs.pop("nprocs", 4), k=kwargs.pop("k", 21), **kwargs)
    return run_pipeline(reads, cfg)


class TestDegenerateReadSets:
    def test_single_read_yields_no_contigs(self):
        rng = np.random.default_rng(0)
        res = run([dna.random_codes(rng, 500)])
        assert res.contigs.count == 0

    def test_all_reads_shorter_than_k(self):
        rng = np.random.default_rng(1)
        reads = [dna.random_codes(rng, 10) for _ in range(20)]
        res = run(reads, k=21)
        assert res.contigs.count == 0
        assert res.counts["reliable_kmers"] == 0

    def test_duplicate_reads_collapse_by_containment(self):
        """Identical copies are mutually contained: at most a degenerate
        assembly, never a crash or an inflated duplication."""
        rng = np.random.default_rng(2)
        read = dna.random_codes(rng, 400)
        res = run([read.copy() for _ in range(6)])
        assert res.contigs.count <= 1

    def test_homopolymer_reads_survive(self):
        """A poly-A input has exactly one distinct k-mer; the seed matrix
        degenerates but nothing crashes."""
        reads = [np.zeros(300, dtype=np.uint8) for _ in range(4)]
        res = run(reads)
        assert res.contigs.count <= 1

    def test_two_disjoint_genomes_stay_separate(self):
        rng = np.random.default_rng(3)
        g1, g2 = dna.random_codes(rng, 1500), dna.random_codes(rng, 1500)
        reads = list(tile_reads(g1, 250, 100).reads) + list(
            tile_reads(g2, 250, 100).reads
        )
        res = run(reads)
        assert res.contigs.count == 2
        seqs = sorted(c.sequence() for c in res.contigs.contigs)
        want = sorted([dna.decode(g1), dna.decode(g2)])
        for got, ref in zip(seqs, want):
            assert got == ref or got == dna.revcomp_str(ref)

    def test_mixed_tiny_and_normal_reads(self):
        rng = np.random.default_rng(4)
        genome = dna.random_codes(rng, 1500)
        reads = list(tile_reads(genome, 250, 100).reads)
        reads += [dna.random_codes(rng, 5) for _ in range(10)]  # junk
        res = run(reads)
        assert res.contigs.count == 1

    def test_zero_reads_clean_empty_result(self):
        res = run([])
        assert res.contigs.count == 0
        assert res.counts["reads"] == 0


class TestInvalidSequences:
    def test_encode_rejects_bad_characters(self):
        with pytest.raises(SequenceError):
            dna.encode("ACGTX")

    def test_fasta_reader_rejects_bad_bases(self, tmp_path):
        p = tmp_path / "bad.fa"
        p.write_text(">r\nACGTN\n")
        with pytest.raises(SequenceError):
            read_fasta(p)

    def test_fasta_reader_empty_file(self, tmp_path):
        p = tmp_path / "empty.fa"
        p.write_text("")
        headers, seqs = read_fasta(p)
        assert headers == [] and seqs == []

    def test_kmer_encode_rejects_out_of_range_codes(self):
        from repro.errors import KmerError

        bad = np.array([0, 1, 7, 2], dtype=np.uint8)
        with pytest.raises(KmerError):
            encode_kmers(bad, 3)


class TestConfigBoundaries:
    def test_k_above_31_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(nprocs=4, k=33).validate()

    def test_k_zero_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(nprocs=4, k=0).validate()

    def test_nprocs_zero_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(nprocs=0).validate()

    def test_reliable_bounds_inverted(self):
        from repro.errors import KmerError
        from repro.kmer.counter import count_kmers

        world = SimWorld(1, zero_cost())
        grid = ProcGrid(world)
        store = DistReadStore.from_global(
            grid, [np.zeros(50, dtype=np.uint8)]
        )
        with pytest.raises(KmerError):
            count_kmers(store, 11, reliable_lo=5, reliable_hi=2)


class TestExtensionRobustness:
    def test_scaffold_of_garbage_contigs(self):
        """Homopolymer 'contigs' share every k-mer: the round must finish
        (either merging by containment or passing through)."""
        seqs = [np.zeros(200, dtype=np.uint8), np.zeros(150, dtype=np.uint8)]
        res = scaffold_contigs(seqs)
        assert 1 <= res.count <= 2

    def test_scaffold_tiny_fragments(self):
        seqs = [np.zeros(5, dtype=np.uint8), np.ones(5, dtype=np.uint8)]
        res = scaffold_contigs(seqs)
        assert res.count == 2  # too short for any k-mer: untouched

    def test_polish_with_empty_read_set(self):
        rng = np.random.default_rng(5)
        contig = dna.random_codes(rng, 300)
        res = polish_contigs([contig], [])
        assert res.total_changed == 0
        assert np.array_equal(res.contigs[0].codes, contig)

    def test_polish_reads_shorter_than_k(self):
        rng = np.random.default_rng(6)
        contig = dna.random_codes(rng, 300)
        reads = [contig[:10].copy() for _ in range(5)]
        res = polish_contigs([contig], reads)
        assert res.total_changed == 0

    def test_polish_all_reads_identical_garbage(self):
        """Unanimous wrong reads CAN outvote the contig -- that is what
        majority consensus means; verify it happens only where the reads
        actually align (anchors), never wholesale."""
        rng = np.random.default_rng(7)
        contig = dna.random_codes(rng, 400)
        unrelated = dna.random_codes(rng, 400)
        res = polish_contigs([contig], [unrelated.copy() for _ in range(5)])
        # unrelated reads share no anchors: contig untouched
        assert res.total_changed == 0
        assert res.stats[0].reads_skipped == 5


class TestCountLimitInjection:
    def test_tiny_count_limit_pipeline_identical(self):
        """Forcing the MPI big-count workaround onto every message must
        not change the assembly (invariant 9 of DESIGN.md)."""
        rng = np.random.default_rng(8)
        genome = dna.random_codes(rng, 2000)
        rs = tile_reads(genome, 250, 100)
        normal = run_pipeline(rs, PipelineConfig(nprocs=4, k=21))
        forced = run_pipeline(
            rs, PipelineConfig(nprocs=4, k=21, count_limit=64)
        )
        a = sorted(c.sequence() for c in normal.contigs.contigs)
        b = sorted(c.sequence() for c in forced.contigs.contigs)
        assert a == b
