"""Tests for the ``repro-jobs`` command line (repro.cli.jobs)."""

import io

import pytest

from repro.cli import jobs_main

SIM = [
    "--simulate", "2500", "--sim-seed", "51",
    "--read-length", "350", "--stride", "140",
]
CFG = ["--nprocs", "4", "-k", "17"]


def run_cli(*argv):
    out = io.StringIO()
    code = jobs_main(list(argv), out=out)
    return code, out.getvalue()


def submit(root, *extra):
    code, out = run_cli("submit", "--root", str(root), *SIM, *CFG, *extra)
    assert code == 0
    return out.strip()


@pytest.fixture
def root(tmp_path):
    return tmp_path / "svc"


class TestSubmitAndWorker:
    def test_submit_prints_job_id(self, root):
        assert submit(root) == "j00001"

    def test_worker_drains_in_priority_order(self, root):
        a = submit(root, "--owner", "alice", "--partition", "greedy")
        b = submit(root, "--owner", "bob", "--priority", "5")
        code, out = run_cli("worker", "--root", str(root))
        assert code == 0
        lines = out.splitlines()
        assert lines[0].startswith(f"{b}: done")
        assert lines[1].startswith(f"{a}: done")
        assert "(4 stage(s) from cache)" in lines[1]
        assert lines[-1] == "processed 2 job(s)"

    def test_worker_max_jobs(self, root):
        submit(root)
        submit(root)
        code, out = run_cli("worker", "--root", str(root), "--max-jobs", "1")
        assert code == 0 and "processed 1 job(s)" in out

    def test_worker_adopt_requeues_orphans(self, root):
        from repro.service import JobService

        job_id = submit(root)
        svc = JobService(root, lease_ttl=0.01)
        assert svc.store.claim_next("dead") is not None
        import time

        time.sleep(0.02)
        code, out = run_cli("worker", "--root", str(root), "--adopt")
        assert code == 0
        assert f"re-queued orphan {job_id}" in out
        assert f"{job_id}: done" in out


class TestInspection:
    def test_list_and_status(self, root):
        job_id = submit(root, "--owner", "alice", "--name", "sweep-1")
        code, out = run_cli("list", "--root", str(root))
        assert code == 0 and "queued" in out and "[sweep-1]" in out
        run_cli("worker", "--root", str(root))
        code, out = run_cli(
            "list", "--root", str(root), "--state", "done", "--owner", "alice"
        )
        assert code == 0 and job_id in out
        code, out = run_cli("status", "--root", str(root), job_id)
        assert code == 0
        assert "ExtractContig" in out and "result: 1 contigs" in out

    def test_list_empty(self, root):
        code, out = run_cli("list", "--root", str(root))
        assert code == 0 and "(no jobs)" in out

    def test_watch_replays_events_of_done_job(self, root):
        job_id = submit(root)
        run_cli("worker", "--root", str(root))
        code, out = run_cli("watch", "--root", str(root), job_id)
        assert code == 0
        assert out.count("stage_end") == 5
        assert out.rstrip().endswith("state: done")

    def test_watch_failed_job_exits_nonzero(self, root):
        code, out = run_cli(
            "submit", "--root", str(root), *SIM, "--nprocs", "3"
        )  # 3 is not a perfect square -> spec fails at materialization
        job_id = out.strip()
        run_cli("worker", "--root", str(root))
        code, out = run_cli("watch", "--root", str(root), job_id)
        assert code == 1 and "state: failed" in out


class TestCancelAndGc:
    def test_cancel_queued(self, root):
        job_id = submit(root)
        code, out = run_cli("cancel", "--root", str(root), job_id)
        assert code == 0 and "cancelled" in out
        code, out = run_cli("worker", "--root", str(root))
        assert "processed 0 job(s)" in out

    def test_gc_evicts_to_budget(self, root):
        submit(root)
        run_cli("worker", "--root", str(root))
        code, out = run_cli(
            "gc", "--root", str(root), "--budget-mb", "0.0001"
        )
        assert code == 0
        assert "evicted 5 entr(ies)" in out and "0 pinned" in out


class TestErrors:
    def test_missing_root_is_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS_ROOT", raising=False)
        code, _ = run_cli("list")
        assert code == 1

    def test_root_from_env(self, root, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_ROOT", str(root))
        code, out = run_cli("list")
        assert code == 0 and "(no jobs)" in out

    def test_unknown_job_is_error(self, root):
        code, _ = run_cli("status", "--root", str(root), "j09999")
        assert code == 1
