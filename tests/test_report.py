"""Unit tests for the report renderers (scaling, breakdown, per-rank)."""

import pytest

from repro import Pipeline, PipelineConfig
from repro.pipeline import (
    ScalingPoint,
    breakdown_table,
    memory_table,
    parallel_efficiency,
    rank_breakdown_table,
    scaling_table,
)
from repro.seq import GenomeSpec, make_genome, tile_reads


@pytest.fixture(scope="module")
def reads():
    genome = make_genome(GenomeSpec(length=2500, seed=51))
    return tile_reads(genome, 350, 140)


@pytest.fixture(scope="module")
def runs(reads):
    cfg = PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5)
    return [
        Pipeline.default().run(reads, cfg),
        Pipeline.default().run(reads, PipelineConfig(
            nprocs=9, k=17, reliable_lo=1, end_margin=5
        )),
    ]


class TestScaling:
    def test_efficiency_relative_to_smallest_p(self):
        points = [
            ScalingPoint(4, 8.0, 1.0),
            ScalingPoint(8, 4.0, 1.0),   # perfect halving
            ScalingPoint(16, 4.0, 1.0),  # no further gain
        ]
        effs = parallel_efficiency(points)
        assert effs == pytest.approx([1.0, 1.0, 0.5])
        assert points[1].speedup_over(points[0]) == pytest.approx(2.0)

    def test_degenerate_inputs(self):
        assert parallel_efficiency([]) == []
        effs = parallel_efficiency(
            [ScalingPoint(4, 1.0, 1.0), ScalingPoint(8, 0.0, 1.0)]
        )
        assert effs[1] == 0.0

    def test_scaling_table_renders_runs(self, runs):
        text = scaling_table("unit", runs)
        assert "strong scaling -- unit" in text
        assert "     4" in text and "     9" in text
        assert "100.0%" in text  # the P=4 base row


class TestBreakdown:
    def test_breakdown_table_has_all_stages(self, runs):
        text = breakdown_table("unit", runs)
        for stage in ("CountKmer", "DetectOverlap", "Alignment",
                      "TrReduction", "ExtractContig"):
            assert stage in text
        assert "ExtractContig substages" in text
        assert "P=4" in text and "P=9" in text

    def test_memory_table_reports_peaks(self, runs):
        text = memory_table("unit", runs)
        assert "overall" in text
        assert "budget" in text
        assert "violations" in text


class TestRankBreakdown:
    def test_one_row_per_rank(self, runs):
        text = rank_breakdown_table("unit", runs[0])
        lines = text.splitlines()
        assert lines[0] == "per-rank breakdown -- unit"
        ranks = [l.split()[0] for l in lines[2:6]]
        assert ranks == ["0", "1", "2", "3"]
        assert [l.split()[0] for l in lines[6:]] == ["max", "p50", "imbal"]

    def test_substages_folded_into_main_stage(self, runs):
        """ExtractContig's column must include its substage charges, so
        each rank's row sums to that rank's share of the full run."""
        result = runs[0]
        clock = result.world.clock
        text = rank_breakdown_table("unit", result)
        header, row0 = text.splitlines()[1], text.splitlines()[2]
        stages = header.split()[1:]
        cells = dict(zip(stages, (float(v) for v in row0.split()[1:])))
        expected = clock.per_rank_seconds("ExtractContig")[0] + sum(
            clock.per_rank_seconds(s)[0]
            for s in clock.stages()
            if s.startswith("ExtractContig/")
        )
        assert cells["ExtractContig"] == pytest.approx(expected, abs=1e-5)

    def test_footer_consistent_with_rows(self, runs):
        text = rank_breakdown_table("unit", runs[0])
        lines = text.splitlines()
        ncols = len(lines[1].split()) - 1
        rows = [
            [float(v) for v in l.split()[1:]] for l in lines[2:6]
        ]
        max_row = [float(v) for v in lines[6].split()[1:]]
        for c in range(ncols):
            assert max_row[c] == pytest.approx(
                max(rows[r][c] for r in range(4)), abs=1e-5
            )
        imbal_row = [float(v) for v in lines[8].split()[1:]]
        assert all(v >= 1.0 for v in imbal_row)
