"""Property tests: the batched engine is bit-identical to the scalar one.

The contract of :mod:`repro.align.batch` is exact element-wise agreement
with :func:`repro.align.xdrop.xdrop_extend` and
:func:`repro.align.classify.classify_overlap` -- both strands, both modes,
edge seeds at sequence boundaries, zero-length extensions.  These tests
enforce it on randomized corpora plus handcrafted edge cases.
"""

import numpy as np
import pytest

from repro.align import (
    KIND_CONTAINED_A,
    KIND_CONTAINED_B,
    KIND_DOVETAIL,
    KIND_INTERNAL,
    OverlapClass,
    batch_xdrop_extend,
    classify_overlap,
    classify_overlaps,
    complemented_pool,
    pack_codes,
    xdrop_extend,
)
from repro.errors import AlignmentError
from repro.seq import dna

KIND_OF_CLASS = {
    OverlapClass.DOVETAIL: KIND_DOVETAIL,
    OverlapClass.CONTAINED_A: KIND_CONTAINED_A,
    OverlapClass.CONTAINED_B: KIND_CONTAINED_B,
    OverlapClass.INTERNAL: KIND_INTERNAL,
}


def random_corpus(rng, npairs, seed_len, min_len=None, max_len=400, related=0.7):
    """Reads plus valid random seeds: mixed strands, boundary seeds included.

    A ``related`` fraction of pairs shares a mutated overlap region (so
    extensions actually run); the rest are unrelated reads whose seeds
    anchor junk extensions that die immediately.
    """
    min_len = min_len if min_len is not None else seed_len
    reads = []
    tasks = []  # (a_idx, b_idx, seed_a, pos_b, same)
    for _ in range(npairs):
        la = int(rng.integers(min_len, max_len + 1))
        lb = int(rng.integers(min_len, max_len + 1))
        if rng.random() < related:
            base = dna.random_codes(rng, max(la, lb))
            a = base[:la].copy()
            b = base[:lb].copy()
            nmut = int(rng.integers(0, max(lb // 20, 1)))
            for _ in range(nmut):
                p = int(rng.integers(0, lb))
                b[p] = (b[p] + 1) % 4
        else:
            a = dna.random_codes(rng, la)
            b = dna.random_codes(rng, lb)
        same = bool(rng.random() < 0.5)
        # force some seeds onto the exact boundaries (zero-length sides)
        edge = rng.random()
        if edge < 0.15:
            sa = 0
        elif edge < 0.3:
            sa = la - seed_len
        else:
            sa = int(rng.integers(0, la - seed_len + 1))
        pb = int(rng.integers(0, lb - seed_len + 1))
        if not same:
            # plant the seed so the oriented extension still sees homology
            b = dna.revcomp(b)
        a_idx = len(reads)
        reads.append(a)
        reads.append(b)
        tasks.append((a_idx, a_idx + 1, sa, pb, same))
    return reads, tasks


def scalar_reference(reads, tasks, seed_len, x, mode, **kwargs):
    """Run the scalar engine the way overlap/filter.py historically did."""
    out = []
    for a_idx, b_idx, sa, pb, same in tasks:
        a = reads[a_idx]
        b = reads[b_idx]
        if same:
            b_oriented = b
            sb = pb
        else:
            b_oriented = dna.revcomp(b)
            sb = b.size - seed_len - pb
        out.append(
            xdrop_extend(a, b_oriented, sa, sb, seed_len, x, mode=mode, **kwargs)
        )
    return out


def run_batch(reads, tasks, seed_len, x, mode, **kwargs):
    buffer, offsets = pack_codes(reads)
    a_idx = np.array([t[0] for t in tasks], dtype=np.int64)
    b_idx = np.array([t[1] for t in tasks], dtype=np.int64)
    sa = np.array([t[2] for t in tasks], dtype=np.int64)
    pb = np.array([t[3] for t in tasks], dtype=np.int64)
    same = np.array([t[4] for t in tasks], dtype=bool)
    return batch_xdrop_extend(
        buffer, offsets, a_idx, b_idx, sa, pb, same, seed_len, x, mode=mode, **kwargs
    )


def assert_identical(batch, scalars):
    assert len(batch) == len(scalars)
    for p, ref in enumerate(scalars):
        got = batch.item(p)
        assert got == ref, f"pair {p}: batch {got} != scalar {ref}"


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("mode", ["diag", "dp"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_pairs(self, mode, seed):
        rng = np.random.default_rng(100 + seed)
        npairs = 60 if mode == "dp" else 150
        reads, tasks = random_corpus(rng, npairs, seed_len=13, max_len=220)
        scalars = scalar_reference(reads, tasks, 13, 15, mode)
        batch = run_batch(reads, tasks, 13, 15, mode)
        assert_identical(batch, scalars)

    @pytest.mark.parametrize("mode", ["diag", "dp"])
    def test_tight_xdrop_and_scores(self, mode):
        rng = np.random.default_rng(7)
        reads, tasks = random_corpus(rng, 50, seed_len=9, max_len=120, related=0.5)
        scalars = scalar_reference(
            reads, tasks, 9, 3, mode, match=2, mismatch=-3
        )
        batch = run_batch(reads, tasks, 9, 3, mode, match=2, mismatch=-3)
        assert_identical(batch, scalars)

    def test_dp_band_and_gap_knobs(self):
        rng = np.random.default_rng(8)
        reads, tasks = random_corpus(rng, 30, seed_len=11, max_len=150)
        scalars = scalar_reference(reads, tasks, 11, 10, "dp", gap=-2, band=4)
        batch = run_batch(reads, tasks, 11, 10, "dp", gap=-2, band=4)
        assert_identical(batch, scalars)

    @pytest.mark.parametrize("mode", ["diag", "dp"])
    def test_seed_spans_whole_read(self, mode):
        """Zero-length extensions on both sides (read length == seed length)."""
        rng = np.random.default_rng(9)
        a = dna.random_codes(rng, 15)
        reads = [a, a.copy(), dna.revcomp(a)]
        tasks = [(0, 1, 0, 0, True), (0, 2, 0, 0, False)]
        scalars = scalar_reference(reads, tasks, 15, 15, mode)
        batch = run_batch(reads, tasks, 15, 15, mode)
        assert_identical(batch, scalars)
        assert batch.a_span.tolist() == [15, 15]

    @pytest.mark.parametrize("mode", ["diag", "dp"])
    def test_boundary_seeds(self, mode):
        """Seeds flush against either end of either read."""
        rng = np.random.default_rng(10)
        genome = dna.random_codes(rng, 200)
        a = genome[:120].copy()
        b = genome[60:].copy()
        reads = [a, b, dna.revcomp(b)]
        k = 10
        tasks = [
            (0, 1, 60, 0, True),            # b prefix seed
            (0, 1, 110, 50, True),          # a suffix seed
            (0, 2, 60, b.size - k, False),  # reverse strand, stored-suffix seed
            (0, 2, 110, b.size - k - 50, False),
        ]
        scalars = scalar_reference(reads, tasks, k, 15, mode)
        batch = run_batch(reads, tasks, k, 15, mode)
        assert_identical(batch, scalars)

    def test_empty_batch(self):
        buffer, offsets = pack_codes([np.zeros(5, dtype=np.uint8)])
        empty = np.empty(0, dtype=np.int64)
        res = batch_xdrop_extend(
            buffer, offsets, empty, empty, empty, empty,
            np.empty(0, dtype=bool), 3, 15,
        )
        assert len(res) == 0

    def test_precomputed_comp_pool_matches(self):
        """A reused complemented pool gives the same results as none."""
        rng = np.random.default_rng(12)
        reads, tasks = random_corpus(rng, 40, seed_len=11, max_len=150)
        buffer, offsets = pack_codes(reads)
        pool = complemented_pool(buffer)
        assert np.array_equal(pool[: buffer.size], buffer)
        assert np.array_equal(pool[buffer.size :], 3 - buffer)
        fresh = run_batch(reads, tasks, 11, 15, "diag")
        reused = run_batch(reads, tasks, 11, 15, "diag", comp_pool=pool)
        for field in ("score", "a_begin", "a_end", "b_begin", "b_end"):
            assert np.array_equal(getattr(fresh, field), getattr(reused, field))

    def test_wrong_sized_comp_pool_raises(self):
        reads = [np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=np.uint8)]
        with pytest.raises(AlignmentError):
            run_batch(
                reads, [(0, 1, 0, 0, True)], 5, 15, "diag",
                comp_pool=np.zeros(7, dtype=np.uint8),
            )

    def test_invalid_seed_raises(self):
        reads = [np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=np.uint8)]
        with pytest.raises(AlignmentError):
            run_batch(reads, [(0, 1, 8, 0, True)], 5, 15, "diag")

    def test_unknown_mode_raises(self):
        reads = [np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=np.uint8)]
        with pytest.raises(AlignmentError):
            run_batch(reads, [(0, 1, 0, 0, True)], 5, 15, "smith-waterman")


class TestClassifyBatch:
    @pytest.mark.parametrize("mode", ["diag", "dp"])
    @pytest.mark.parametrize("end_margin", [0, 5, 10])
    def test_matches_scalar_classifier(self, mode, end_margin):
        rng = np.random.default_rng(42)
        reads, tasks = random_corpus(rng, 120, seed_len=13, max_len=200)
        scalars = scalar_reference(reads, tasks, 13, 15, mode)
        batch = run_batch(reads, tasks, 13, 15, mode)
        alen = np.array([reads[t[0]].size for t in tasks], dtype=np.int64)
        blen = np.array([reads[t[1]].size for t in tasks], dtype=np.int64)
        same = np.array([t[4] for t in tasks], dtype=bool)
        cls = classify_overlaps(batch, alen, blen, same, end_margin=end_margin)
        ndove = 0
        for p, res in enumerate(scalars):
            info = classify_overlap(
                res, int(alen[p]), int(blen[p]), bool(same[p]),
                end_margin=end_margin,
            )
            assert int(cls.kind[p]) == KIND_OF_CLASS[info.kind], f"pair {p}"
            assert int(cls.score[p]) == info.score
            if info.kind != OverlapClass.DOVETAIL:
                continue
            ndove += 1
            for half, fields in (("forward", info.forward), ("reverse", info.reverse)):
                arrs = getattr(cls, half)
                assert int(arrs.direction[p]) == fields.direction, f"pair {p} {half}"
                assert int(arrs.suffix[p]) == fields.suffix, f"pair {p} {half}"
                assert int(arrs.pre[p]) == fields.pre, f"pair {p} {half}"
                assert int(arrs.post[p]) == fields.post, f"pair {p} {half}"
        # the corpus must actually exercise the dovetail payload path
        if end_margin == 10:
            assert ndove > 0
