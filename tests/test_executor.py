"""Executor-backend semantics: map_ranks, RankContext accounting, and the
serial/thread equivalence contract.

The tentpole invariant: a pipeline run produces bit-identical artifacts
and identical modeled cost/memory accounting whichever backend executes
the per-rank supersteps.  These tests pin that contract at three levels:
the raw ``map_ranks`` API, concurrent stage scoping + subcomm collectives,
and the full five-stage pipeline.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Pipeline, PipelineConfig
from repro.errors import CommunicatorError, PipelineError
from repro.mpi import (
    EXECUTOR_BACKENDS,
    IN_PROCESS_BACKENDS,
    RankContext,
    SerialExecutor,
    SimWorld,
    ThreadExecutor,
    cori_haswell,
    make_executor,
)
from repro.seq import GenomeSpec, make_genome, sample_reads

# These tests exercise in-process semantics: their steps are closures over
# worlds and enclosing lists, which is exactly what out-of-process backends
# reject (steps must be picklable, enclosing mutation is lost).  The
# process/mpi backends get their own contract suite in
# test_executor_parallel.py.
BACKENDS = list(IN_PROCESS_BACKENDS)


# ---------------------------------------------------------------------------
# the executor registry
# ---------------------------------------------------------------------------


class TestMakeExecutor:
    def test_resolves_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)

    def test_all_backends_registered(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread", "process", "mpi")
        for name in EXECUTOR_BACKENDS:
            ex = make_executor(name)
            assert ex.name == name
            assert make_executor(name) is ex  # shared default instance
        for name in IN_PROCESS_BACKENDS:
            assert make_executor(name).in_process
        assert not make_executor("process").in_process
        assert not make_executor("mpi").in_process

    def test_instance_passthrough(self):
        ex = ThreadExecutor(max_workers=2)
        assert make_executor(ex) is ex

    def test_unknown_backend(self):
        with pytest.raises(CommunicatorError, match="unknown executor"):
            make_executor("fibers")

    def test_bad_worker_count(self):
        with pytest.raises(CommunicatorError):
            ThreadExecutor(max_workers=0)

    def test_shutdown_idempotent(self):
        ex = ThreadExecutor(max_workers=2)
        w = SimWorld(4, executor=ex)
        w.map_ranks(lambda ctx: int(ctx) * 2)
        ex.shutdown()
        ex.shutdown()
        # pool is rebuilt lazily after shutdown
        assert w.map_ranks(lambda ctx: int(ctx)) == [0, 1, 2, 3]

    def test_names_resolve_to_shared_instances(self):
        """Backend names share one instance (and one pool) process-wide."""
        assert make_executor("thread") is make_executor("thread")
        assert make_executor("serial") is make_executor("serial")
        # explicit construction still yields private instances
        assert ThreadExecutor() is not make_executor("thread")

    def test_world_use_executor_swaps(self):
        w = SimWorld(4)
        assert w.executor.name == "serial"
        w.use_executor("thread")
        assert w.executor.name == "thread"
        with pytest.raises(CommunicatorError):
            w.use_executor("nope")


# ---------------------------------------------------------------------------
# map_ranks basics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestMapRanks:
    def test_results_in_rank_order(self, backend):
        w = SimWorld(6, executor=backend)

        def step(ctx, x):
            # later ranks finish first under the thread backend
            time.sleep(0.002 * (6 - int(ctx)))
            return (int(ctx), x * 10)

        assert w.map_ranks(step, list(range(6))) == [(r, r * 10) for r in range(6)]

    def test_multiple_per_rank_args(self, backend):
        w = SimWorld(4, executor=backend)
        out = w.map_ranks(lambda ctx, a, b: a + b, [1, 2, 3, 4], [10, 20, 30, 40])
        assert out == [11, 22, 33, 44]

    def test_no_args(self, backend):
        w = SimWorld(3, executor=backend)
        assert w.map_ranks(lambda ctx: int(ctx) ** 2) == [0, 1, 4]

    def test_arg_length_validated(self, backend):
        w = SimWorld(4, executor=backend)
        with pytest.raises(CommunicatorError, match="expects 4 per-rank entries"):
            w.map_ranks(lambda ctx, a: a, [1, 2, 3])

    def test_context_is_the_rank_integer(self, backend):
        w = SimWorld(4, executor=backend)
        slots = [None] * 4

        def step(ctx):
            assert isinstance(ctx, RankContext)
            assert ctx.rank == int(ctx)
            slots[ctx] = ctx + 100  # indexable and arithmetic like an int
            return ctx.world is w

        assert all(w.map_ranks(step))
        assert slots == [100, 101, 102, 103]

    def test_exceptions_propagate(self, backend):
        w = SimWorld(4, cori_haswell(), executor=backend)

        def step(ctx):
            ctx.charge_compute(1000)
            if int(ctx) == 2:
                raise RuntimeError("rank 2 exploded")

        with pytest.raises(RuntimeError, match="rank 2"):
            w.map_ranks(step)
        # no partial merge: a failed superstep charges nothing
        assert w.clock.stages() == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestInStepGuards:
    """Direct world accounting inside a step errors on BOTH backends --
    under threads it would silently mis-attribute stages, so the guard
    keeps the backend-identical contract enforceable."""

    def test_world_charge_compute_rejected(self, backend):
        w = SimWorld(4, cori_haswell(), executor=backend)
        with pytest.raises(CommunicatorError, match="inside a map_ranks step"):
            w.map_ranks(lambda ctx: w.charge_compute(int(ctx), 10))

    def test_world_observe_memory_rejected(self, backend):
        w = SimWorld(4, cori_haswell(), executor=backend)
        with pytest.raises(CommunicatorError, match="inside a map_ranks step"):
            w.map_ranks(lambda ctx: w.observe_memory(int(ctx), 10.0))

    def test_collectives_rejected(self, backend):
        w = SimWorld(4, cori_haswell(), executor=backend)
        with pytest.raises(CommunicatorError, match="collective"):
            w.map_ranks(lambda ctx: w.comm.barrier())

    def test_guard_lifts_after_superstep(self, backend):
        w = SimWorld(4, cori_haswell(), executor=backend)
        w.map_ranks(lambda ctx: ctx.charge_compute(5))
        w.charge_compute(0, 10)  # fine between supersteps
        w.comm.barrier()

    def test_nested_map_ranks_rejected(self, backend):
        """Nesting would deadlock a saturated thread pool; it fails fast
        with the same error on both backends instead."""
        w = SimWorld(4, cori_haswell(), executor=backend)

        def outer(ctx):
            w.map_ranks(lambda inner: int(inner))

        with pytest.raises(CommunicatorError, match="inside a map_ranks step"):
            w.map_ranks(outer)


class TestThreadFailureSemantics:
    def test_lowest_rank_exception_wins_and_all_ranks_drain(self):
        """A later rank failing *first in time* does not mask the lowest
        failing rank, and no orphan step keeps running after the raise."""
        w = SimWorld(4, executor="thread")
        finished = [False] * 4

        def step(ctx):
            r = int(ctx)
            if r == 3:
                finished[r] = True
                raise RuntimeError("rank 3 failed fast")
            time.sleep(0.005 * (r + 1))
            finished[r] = True
            if r == 1:
                raise RuntimeError("rank 1 failed slow")

        with pytest.raises(RuntimeError, match="rank 1"):
            w.map_ranks(step)
        assert all(finished)  # every rank drained before the raise


# ---------------------------------------------------------------------------
# accounting through RankContext
# ---------------------------------------------------------------------------


def _charged_world(backend):
    w = SimWorld(4, cori_haswell(), executor=backend)
    with w.stage_scope("Super"):

        def step(ctx, ops):
            ctx.charge_compute(ops)
            with ctx.stage_scope("Super/inner"):
                ctx.charge_compute(ops * 2, kind="alignment")
            ctx.observe_memory(float(1000 * (int(ctx) + 1)))
            return int(ctx)

        w.map_ranks(step, [100, 200, 300, 400])
    return w


class TestRankContextAccounting:
    def test_backends_charge_identically(self):
        serial, thread = _charged_world("serial"), _charged_world("thread")
        assert serial.clock.stages() == thread.clock.stages() == ["Super", "Super/inner"]
        for stage in serial.clock.stages():
            assert np.array_equal(
                serial.clock.per_rank_seconds(stage),
                thread.clock.per_rank_seconds(stage),
            )
        assert serial.memory.by_stage() == thread.memory.by_stage()

    def test_nested_scope_attribution(self):
        w = _charged_world("thread")
        machine = cori_haswell()
        outer = w.clock.per_rank_seconds("Super")
        inner = w.clock.per_rank_seconds("Super/inner")
        for rank, ops in enumerate([100, 200, 300, 400]):
            assert outer[rank] == machine.op_time(ops)
            assert inner[rank] == machine.op_time(ops * 2, kind="alignment")

    def test_memory_scaled_by_volume_scale(self):
        w = SimWorld(2, cori_haswell().scaled(8.0), executor="thread")
        w.map_ranks(lambda ctx: ctx.observe_memory(100.0))
        assert w.memory.peak(0) == 800.0
        assert w.memory.peak(1) == 800.0

    def test_worker_scopes_do_not_leak_to_main(self):
        w = SimWorld(4, cori_haswell(), executor="thread")
        with w.stage_scope("Outer"):

            def step(ctx):
                with ctx.stage_scope("Outer/deep"):
                    ctx.charge_compute(50)
                return w.stage  # the *world* stack as this thread sees it

            w.map_ranks(step)
            # per-rank scopes never touched the calling thread's stack
            assert w.stage == "Outer"


# ---------------------------------------------------------------------------
# supersteps interleaved with subcomm collectives
# ---------------------------------------------------------------------------


def _superstep_with_subcomms(backend, seed=11):
    """A seeded mini-workload: two supersteps around subcomm collectives."""
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 100, size=64 + 16 * r) for r in range(4)]
    w = SimWorld(4, cori_haswell(), executor=backend)
    with w.stage_scope("Phase"):
        sums = w.map_ranks(
            lambda ctx, arr: (ctx.charge_compute(arr.size), int(arr.sum()))[1],
            payloads,
        )
        evens = w.subcomm([0, 2], label="even")
        odds = w.subcomm([1, 3], label="odd")
        tot_e = evens.allreduce([sums[0], sums[2]], lambda a, b: a + b)
        tot_o = odds.allreduce([sums[1], sums[3]], lambda a, b: a + b)
        with w.stage_scope("Phase/combine"):
            combined = w.map_ranks(
                lambda ctx: tot_e if int(ctx) % 2 == 0 else tot_o
            )
    return w, sums, combined


class TestSubcommInterleaving:
    def test_results_identical_across_backends(self):
        (ws, sums_s, comb_s) = _superstep_with_subcomms("serial")
        (wt, sums_t, comb_t) = _superstep_with_subcomms("thread")
        assert sums_s == sums_t
        assert comb_s == comb_t
        assert ws.clock.stages() == wt.clock.stages()
        for stage in ws.clock.stages():
            assert np.array_equal(
                ws.clock.per_rank_seconds(stage), wt.clock.per_rank_seconds(stage)
            )
        assert len(ws.log) == len(wt.log)
        assert [e.op for e in ws.log.events] == [e.op for e in wt.log.events]
        assert ws.log.total_bytes() == wt.log.total_bytes()

    def test_subcomm_charges_only_member_ranks(self):
        w, _sums, _comb = _superstep_with_subcomms("thread")
        per_rank = w.clock.per_rank_seconds("Phase")
        assert per_rank.shape == (4,)
        assert (per_rank > 0).all()

    def test_collectives_safe_from_worker_threads(self):
        """Misuse tolerance: concurrent collectives keep clock/log intact."""
        w = SimWorld(4, cori_haswell(), executor="serial")
        n_threads, reps = 8, 25
        errors = []

        def hammer():
            try:
                for _ in range(reps):
                    w.comm.barrier()
                    w.comm.allgather([1, 2, 3, 4])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(w.log) == n_threads * reps * 2
        machine = cori_haswell()
        expect = n_threads * reps * (
            machine.collective_time("barrier", 4)
            + machine.collective_time("allgather", 4, 32, 8)
        )
        got = w.clock.per_rank_seconds("default")
        assert np.allclose(got, expect)


# ---------------------------------------------------------------------------
# vectorized charge_compute_all
# ---------------------------------------------------------------------------


class TestChargeComputeAll:
    def test_matches_per_rank_loop(self):
        machine = cori_haswell()
        bulk, loop = SimWorld(4, machine), SimWorld(4, machine)
        ops = [10, 0, 345, 7]
        with bulk.stage_scope("S"):
            bulk.charge_compute_all(ops, kind="alignment")
        with loop.stage_scope("S"):
            for rank, n in enumerate(ops):
                loop.charge_compute(rank, n, kind="alignment")
        assert np.array_equal(
            bulk.clock.per_rank_seconds("S"), loop.clock.per_rank_seconds("S")
        )

    def test_zero_machine_creates_no_stage(self):
        w = SimWorld(4)  # zero-cost machine
        w.charge_compute_all([5, 5, 5, 5])
        assert w.clock.stages() == []

    def test_wrong_arity(self):
        w = SimWorld(4)
        with pytest.raises(CommunicatorError):
            w.charge_compute_all([1, 2, 3])

    def test_negative_rejected(self):
        w = SimWorld(2, cori_haswell())
        with pytest.raises(ValueError):
            w.charge_compute_all([1, -1])


# ---------------------------------------------------------------------------
# collective input validation (audit)
# ---------------------------------------------------------------------------


class TestCollectiveValidation:
    def test_alltoall_outer_arity_names_counts(self):
        w = SimWorld(4)
        with pytest.raises(CommunicatorError, match="expects 4 per-rank entries, got 3"):
            w.comm.alltoall([[0] * 4] * 3)

    def test_alltoall_row_arity_names_counts(self):
        w = SimWorld(4)
        rows = [[0] * 4, [0] * 4, [0] * 2, [0] * 4]
        with pytest.raises(CommunicatorError, match="row 2 has 2 entries, expected 4"):
            w.comm.alltoall(rows)

    def test_allgather_arity_names_counts(self):
        w = SimWorld(3)
        with pytest.raises(CommunicatorError, match="expects 3 per-rank entries, got 5"):
            w.comm.allgather([1, 2, 3, 4, 5])

    def test_reduce_scatter_arity_names_counts(self):
        w = SimWorld(3)
        arrs = [np.zeros(6, dtype=np.int64)] * 2
        with pytest.raises(CommunicatorError, match="expects 3 per-rank entries, got 2"):
            w.comm.reduce_scatter(arrs)

    def test_reduce_scatter_block_sizes_validated(self):
        w = SimWorld(2)
        arrs = [np.zeros(4, dtype=np.int64)] * 2
        with pytest.raises(CommunicatorError, match="block sizes"):
            w.comm.reduce_scatter(arrs, block_sizes=[4])
        with pytest.raises(CommunicatorError, match=">= 0"):
            w.comm.reduce_scatter(arrs, block_sizes=[6, -2])
        with pytest.raises(CommunicatorError, match="sum to"):
            w.comm.reduce_scatter(arrs, block_sizes=[1, 1])


# ---------------------------------------------------------------------------
# pipeline-level equivalence (the acceptance contract)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_readset():
    genome = make_genome(GenomeSpec(length=6000, seed=17))
    return genome, sample_reads(
        genome,
        depth=12,
        mean_length=450,
        rng=23,
        error_rate=0.002,
        error_mix=(1.0, 0.0, 0.0),
    )


def _run(reads, executor, **kwargs):
    cfg = PipelineConfig(
        nprocs=4, k=21, end_margin=20, executor=executor, **kwargs
    )
    return Pipeline.default().run(reads, cfg)


class TestPipelineEquivalence:
    def test_artifacts_and_accounting_identical(self, small_readset):
        _genome, reads = small_readset
        a = _run(reads, "serial")
        b = _run(reads, "thread")
        # artifacts: bit-identical contig set
        assert [c.sequence() for c in a.contigs.contigs] == [
            c.sequence() for c in b.contigs.contigs
        ]
        assert [c.read_path for c in a.contigs.contigs] == [
            c.read_path for c in b.contigs.contigs
        ]
        assert [c.orientations for c in a.contigs.contigs] == [
            c.orientations for c in b.contigs.contigs
        ]
        assert a.counts == b.counts
        # accounting: identical StageClock and CommLog, to the bit
        assert a.world.clock.stages() == b.world.clock.stages()
        assert a.report.stage_seconds == b.report.stage_seconds
        assert a.report.stage_comm_seconds == b.report.stage_comm_seconds
        for stage in a.world.clock.stages():
            assert np.array_equal(
                a.world.clock.per_rank_seconds(stage),
                b.world.clock.per_rank_seconds(stage),
            )
        assert len(a.world.log) == len(b.world.log)
        assert a.world.log.bytes_by_op() == b.world.log.bytes_by_op()
        assert a.world.log.bytes_by_stage() == b.world.log.bytes_by_stage()
        # memory observation path is also backend-independent
        assert a.world.memory.by_stage() == b.world.memory.by_stage()
        assert a.peak_memory_bytes == b.peak_memory_bytes

    def test_polish_and_low_memory_identical(self, small_readset):
        _genome, reads = small_readset
        a = _run(reads, "serial", polish=True, memory_mode="low")
        b = _run(reads, "thread", polish=True, memory_mode="low")
        assert [c.sequence() for c in a.contigs.contigs] == [
            c.sequence() for c in b.contigs.contigs
        ]
        assert a.report.stage_seconds == b.report.stage_seconds
        assert a.world.memory.by_stage() == b.world.memory.by_stage()

    def test_config_validates_executor(self):
        cfg = PipelineConfig(nprocs=4, executor="warp")
        with pytest.raises(PipelineError, match="unknown executor"):
            cfg.validate()

    def test_env_override_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert PipelineConfig().executor == "thread"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert PipelineConfig().executor == "serial"

    def test_executor_not_fingerprinted(self, small_readset, tmp_path):
        """Checkpoints written under one backend resume under the other."""
        _genome, reads = small_readset
        ckpt = str(tmp_path / "ckpt")
        cfg_a = PipelineConfig(nprocs=4, k=21, end_margin=20, executor="serial")
        first = Pipeline.default().run(reads, cfg_a, checkpoint_dir=ckpt)
        cfg_b = PipelineConfig(nprocs=4, k=21, end_margin=20, executor="thread")
        second = Pipeline.default().run(reads, cfg_b, checkpoint_dir=ckpt)
        assert second.stages_run == []
        assert [n for n, why in second.stages_skipped if why == "checkpoint"] == [
            s for s in first.stages_run
        ]
        assert [c.sequence() for c in second.contigs.contigs] == [
            c.sequence() for c in first.contigs.contigs
        ]
