"""Unit tests for overlap classification and edge-payload geometry.

The decisive test is the walk-consistency one at the bottom: for every
dovetail case (4 direction combinations) the pre/post cut points must
concatenate two reads back into the original genome fragment.
"""

import numpy as np
import pytest

from repro.align import OverlapClass, XdropResult, classify_overlap, extend_gapless
from repro.seq import dna
from repro.strgraph.edgecodec import dst_end_bit, mirror_direction, src_end_bit


def _res(a0, a1, b0, b1, score=50):
    return XdropResult(score=score, a_begin=a0, a_end=a1, b_begin=b0, b_end=b1)


class TestClassification:
    def test_contained_b(self):
        # b fully covered by the alignment
        info = classify_overlap(_res(5, 25, 0, 20), alen=40, blen=20, same_strand=True)
        assert info.kind == OverlapClass.CONTAINED_B
        assert info.forward is None

    def test_contained_a(self):
        info = classify_overlap(_res(0, 20, 5, 25), alen=20, blen=40, same_strand=True)
        assert info.kind == OverlapClass.CONTAINED_A

    def test_internal_rejected(self):
        # alignment ends in the middle of both reads
        info = classify_overlap(_res(10, 20, 10, 20), alen=40, blen=40, same_strand=True)
        assert info.kind == OverlapClass.INTERNAL

    def test_suffix_prefix_same_strand(self):
        # a's suffix overlaps b's prefix
        info = classify_overlap(_res(30, 40, 0, 10), alen=40, blen=40, same_strand=True)
        assert info.kind == OverlapClass.DOVETAIL
        assert info.forward.direction == 0b10
        assert info.reverse.direction == 0b01

    def test_prefix_suffix_same_strand(self):
        info = classify_overlap(_res(0, 10, 30, 40), alen=40, blen=40, same_strand=True)
        assert info.kind == OverlapClass.DOVETAIL
        assert info.forward.direction == 0b01
        assert info.reverse.direction == 0b10

    def test_opposite_strand_directions(self):
        # a suffix onto rc(b) prefix: in stored coords the overlap is at
        # b's suffix -> both-suffix edge 0b11
        info = classify_overlap(_res(30, 40, 0, 10), alen=40, blen=40, same_strand=False)
        assert info.forward.direction == 0b11
        assert info.reverse.direction == 0b11
        info2 = classify_overlap(_res(0, 10, 30, 40), alen=40, blen=40, same_strand=False)
        assert info2.forward.direction == 0b00
        assert info2.reverse.direction == 0b00

    def test_mirror_relationship(self):
        info = classify_overlap(_res(30, 40, 0, 10), alen=40, blen=40, same_strand=True)
        assert info.reverse.direction == mirror_direction(info.forward.direction)

    def test_end_margin_allows_slack(self):
        # alignment stops 3bp short of a's end: margin 5 accepts, 1 rejects
        ok = classify_overlap(
            _res(30, 37, 0, 7), alen=40, blen=40, same_strand=True, end_margin=5
        )
        assert ok.kind == OverlapClass.DOVETAIL
        rejected = classify_overlap(
            _res(30, 37, 0, 7), alen=40, blen=40, same_strand=True, end_margin=1
        )
        assert rejected.kind == OverlapClass.INTERNAL

    def test_suffix_lengths(self):
        # same strand, a[30:40) over b[0:10): b extends with blen - 10 bases
        info = classify_overlap(_res(30, 40, 0, 10), alen=40, blen=50, same_strand=True)
        assert info.forward.suffix == 40
        # reverse edge: a extends with a_begin bases
        assert info.reverse.suffix == 30


def _join(a_codes, b_codes, info):
    """Concatenate two reads through an edge's pre/post cut points."""
    fields = info.forward
    fwd_a = bool(src_end_bit(fields.direction))
    if fwd_a:
        head = a_codes[: fields.pre + 1]
    else:
        head = dna.revcomp(a_codes[fields.pre :])
    fwd_b = dst_end_bit(fields.direction) == 0
    if fwd_b:
        tail = b_codes[fields.post :]
    else:
        tail = dna.revcomp(b_codes[: fields.post + 1])
    return np.concatenate([head, tail])


class TestWalkConsistency:
    """For each strand/end combination: aligning two overlapping reads and
    joining them via pre/post must reproduce the genome fragment."""

    @pytest.fixture
    def genome(self):
        rng = np.random.default_rng(7)
        return dna.random_codes(rng, 120)

    def _check(self, genome, a_codes, b_codes, same_strand, seed_a, seed_b, k=11):
        res = extend_gapless(
            a_codes,
            b_codes if same_strand else dna.revcomp(b_codes),
            seed_a,
            seed_b,
            k,
            x=10,
        )
        info = classify_overlap(
            res, len(a_codes), len(b_codes), same_strand, end_margin=0
        )
        assert info.kind == OverlapClass.DOVETAIL
        joined = _join(a_codes, b_codes, info)
        ok_fwd = np.array_equal(joined, genome)
        ok_rev = np.array_equal(dna.revcomp(joined), genome)
        assert ok_fwd or ok_rev

    def test_same_strand_suffix_prefix(self, genome):
        a = genome[:70].copy()
        b = genome[40:].copy()
        self._check(genome, a, b, True, 45, 5)

    def test_same_strand_prefix_suffix(self, genome):
        a = genome[40:].copy()
        b = genome[:70].copy()
        self._check(genome, a, b, True, 5, 45)

    def test_opposite_strand_b_reversed(self, genome):
        a = genome[:70].copy()
        b = dna.revcomp(genome[40:])
        # seed in oriented-b coords: rc(b) == genome[40:], so same positions
        self._check(genome, a, b, False, 45, 5)

    def test_opposite_strand_other_end(self, genome):
        a = dna.revcomp(genome[:70])
        b = genome[40:].copy()
        # oriented a stays stored; align a against rc(b) = rc(genome[40:])
        # shared seed: stored a = rc(genome[:70]); rc(b) = rc(genome[40:]).
        # rc(genome)[i] correspondence: pick seed by search
        a_or = a
        b_or = dna.revcomp(b)
        found = None
        k = 11
        for i in range(len(a_or) - k + 1):
            w = a_or[i : i + k]
            for j in range(len(b_or) - k + 1):
                if np.array_equal(w, b_or[j : j + k]):
                    found = (i, j)
                    break
            if found:
                break
        assert found is not None
        self._check(genome, a, b, False, found[0], found[1])
