"""Kernel-tier registry and numpy/native bit-identity.

The ``native`` tier (C extension under :mod:`repro._native`) must be an
invisible substitution for the numpy reference on every kernel: the
property corpora here reuse the scalar-reference generators of the batch
engines (``test_align_batch``/``test_contig_batch``) and assert
element-wise equality between tiers, plus full-pipeline
``contig_digest()`` equality across executor backends.  The fallback
tests pin the graceful-degradation contract: a missing extension resolves
``native`` to ``numpy`` with an observer note, never a crash.
"""

import argparse
import pickle

import numpy as np
import pytest

import test_align_batch as align_fixtures
import test_contig_batch as contig_fixtures
from repro import kernels as kernels_mod
from repro.cli.common import (
    add_machine_arg,
    add_pipeline_args,
    build_pipeline_config,
)
from repro.core import local_assembly
from repro.errors import KernelError, PipelineError
from repro.kernels import (
    KERNEL_TIERS,
    default_kernel_tier,
    native_available,
    native_import_error,
    native_kernels,
    resolve_kernel_tier,
)
from repro.overlap.filter import AlignmentParams
from repro.pipeline import Pipeline, PipelineConfig, PipelineObserver
from repro.pipeline.stages import AlignmentStage, ExtractContigStage
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.service import JobService
from repro.telemetry import Tracer

requires_native = pytest.mark.skipif(
    not native_available(), reason="native kernel extension not built"
)


@pytest.fixture
def no_native(monkeypatch):
    """Simulate a host where the extension never built (probe failed)."""
    monkeypatch.setattr(kernels_mod, "_PROBED", True)
    monkeypatch.setattr(kernels_mod, "_NATIVE", None)
    monkeypatch.setattr(
        kernels_mod, "_NATIVE_ERROR", "No module named 'repro._native._kernels'"
    )


@pytest.fixture
def tiny_reads():
    genome = make_genome(GenomeSpec(length=2000, seed=51))
    return tile_reads(genome, 300, 120)


# -- registry ------------------------------------------------------------


class TestRegistry:
    def test_registered_tiers(self):
        assert KERNEL_TIERS == ("numpy", "native")

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
        assert default_kernel_tier() == "numpy"
        assert resolve_kernel_tier(None) == "numpy"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "native")
        assert default_kernel_tier() == "native"

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "native")
        assert resolve_kernel_tier("numpy") == "numpy"

    def test_unknown_tier_raises(self):
        with pytest.raises(KernelError, match="unknown kernel tier"):
            resolve_kernel_tier("fortran")

    @requires_native
    def test_native_resolves_native(self):
        assert resolve_kernel_tier("native") == "native"
        mod = native_kernels()
        assert callable(mod.gapless_scan)
        assert callable(mod.banded_batch)
        assert callable(mod.walk_rounds)
        assert native_import_error() is None

    def test_missing_extension_falls_back(self, no_native):
        assert not native_available()
        assert resolve_kernel_tier("native") == "numpy"
        assert "._kernels" in native_import_error()
        with pytest.raises(KernelError, match="unavailable"):
            native_kernels()


# -- config / CLI --------------------------------------------------------


class TestConfigAndCli:
    def test_config_validates_tier(self):
        with pytest.raises(PipelineError, match="kernel_tier"):
            PipelineConfig(nprocs=4, kernel_tier="fortran").validate()

    def test_config_default_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "native")
        assert PipelineConfig().kernel_tier == "native"
        monkeypatch.delenv("REPRO_KERNEL_TIER")
        assert PipelineConfig().kernel_tier == "numpy"

    def test_tier_not_fingerprinted(self):
        # bit-identical knobs stay out of checkpoint fingerprints, like
        # executor / align_batch_size / contig_engine
        assert "kernel_tier" not in AlignmentStage.config_fields
        assert "kernel_tier" not in ExtractContigStage.config_fields

    def test_cli_flag_applies(self):
        parser = argparse.ArgumentParser()
        add_machine_arg(parser)
        add_pipeline_args(parser)
        args = parser.parse_args(["--kernel-tier", "native"])
        assert build_pipeline_config(args).kernel_tier == "native"
        args = parser.parse_args([])
        cfg = build_pipeline_config(args)
        assert cfg.kernel_tier == default_kernel_tier()

    def test_cli_rejects_unknown_tier(self, capsys):
        parser = argparse.ArgumentParser()
        add_pipeline_args(parser)
        with pytest.raises(SystemExit):
            parser.parse_args(["--kernel-tier", "fortran"])

    def test_params_pickle_roundtrip(self):
        params = AlignmentParams(k=13, kernel_tier="native")
        clone = pickle.loads(pickle.dumps(params))
        assert clone == params and clone.kernel_tier == "native"


# -- property corpus: alignment kernels ----------------------------------


@requires_native
class TestAlignmentTierIdentity:
    @pytest.mark.parametrize("mode", ["diag", "dp"])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_corpus(self, mode, seed):
        """Tier equality on mixed-strand random tasks (revcomp pools in)."""
        rng = np.random.default_rng(900 + seed)
        reads, tasks = align_fixtures.random_corpus(rng, 40, 11)
        ref = align_fixtures.run_batch(
            reads, tasks, 11, 15, mode, kernel_tier="numpy"
        )
        out = align_fixtures.run_batch(
            reads, tasks, 11, 15, mode, kernel_tier="native"
        )
        for name in ("score", "a_begin", "a_end", "b_begin", "b_end"):
            np.testing.assert_array_equal(
                getattr(out, name), getattr(ref, name), err_msg=name
            )

    @pytest.mark.parametrize("mode", ["diag", "dp"])
    def test_native_matches_scalar_reference(self, mode):
        """Fuzz leg: the native tier against the PR 2 scalar aligner."""
        rng = np.random.default_rng(77)
        reads, tasks = align_fixtures.random_corpus(rng, 30, 9, max_len=120)
        scalars = align_fixtures.scalar_reference(reads, tasks, 9, 15, mode)
        out = align_fixtures.run_batch(
            reads, tasks, 9, 15, mode, kernel_tier="native"
        )
        align_fixtures.assert_identical(out, scalars)

    @pytest.mark.parametrize("x", [0, 3, 15])
    def test_tight_xdrop_and_scoring_knobs(self, x):
        rng = np.random.default_rng(43)
        reads, tasks = align_fixtures.random_corpus(rng, 25, 9, max_len=150)
        for kwargs in (
            {"match": 2, "mismatch": -3},
            {"gap": -2, "band": 3},
            {"gap": -5, "band": 1},
        ):
            mode = "dp" if ("gap" in kwargs or "band" in kwargs) else "diag"
            ref = align_fixtures.run_batch(
                reads, tasks, 9, x, mode, kernel_tier="numpy", **kwargs
            )
            out = align_fixtures.run_batch(
                reads, tasks, 9, x, mode, kernel_tier="native", **kwargs
            )
            for name in ("score", "a_begin", "a_end", "b_begin", "b_end"):
                np.testing.assert_array_equal(
                    getattr(out, name), getattr(ref, name),
                    err_msg=f"{name} with {kwargs}",
                )


# -- property corpus: walk kernel ----------------------------------------


@requires_native
class TestWalkTierIdentity:
    @pytest.mark.parametrize("emit_cycles", [False, True])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_degree2_corpus(self, seed, emit_cycles):
        """Cycles, truncations and broken walks across both tiers."""
        rng = np.random.default_rng(700 + seed)
        graph, packed = contig_fixtures.random_degree2_graph(
            rng, n_components=10, corrupt_prob=0.4
        )
        ref = local_assembly(
            graph, packed, emit_cycles=emit_cycles,
            engine="batch", kernel_tier="numpy",
        )
        out = local_assembly(
            graph, packed, emit_cycles=emit_cycles,
            engine="batch", kernel_tier="native",
        )
        contig_fixtures.assert_results_identical(out, ref)

    def test_heavily_corrupted_matches_scalar(self):
        """Fuzz leg: native tier against the PR 3 scalar walk."""
        rng = np.random.default_rng(88)
        graph, packed = contig_fixtures.random_degree2_graph(
            rng, n_components=12, corrupt_prob=1.0
        )
        scalar = local_assembly(
            graph, packed, emit_cycles=True, engine="scalar"
        )
        out = local_assembly(
            graph, packed, emit_cycles=True,
            engine="batch", kernel_tier="native",
        )
        contig_fixtures.assert_results_identical(out, scalar)
        assert any(c.truncated for c in scalar.contigs) or scalar.n_cycles > 0


# -- full pipeline -------------------------------------------------------


class _NoteCollector(PipelineObserver):
    def __init__(self):
        self.notes = []

    def on_stage_note(self, stage, ctx, note):
        self.notes.append((stage, note))


@requires_native
class TestPipelineTierIdentity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_contig_digest_identical(self, executor, tiny_reads):
        digests = {}
        for tier in KERNEL_TIERS:
            cfg = PipelineConfig(
                nprocs=4, k=15, executor=executor, kernel_tier=tier
            )
            digests[tier] = (
                Pipeline().run(tiny_reads, config=cfg).contig_digest()
            )
        assert digests["numpy"] == digests["native"]

    def test_tracer_digests_identical_with_tier_attribution(self, tiny_reads):
        digests, tiers_seen = {}, {}
        for tier in KERNEL_TIERS:
            tracer = Tracer()
            cfg = PipelineConfig(nprocs=4, k=15, kernel_tier=tier)
            Pipeline().run(tiny_reads, config=cfg, tracer=tracer)
            digests[tier] = tracer.digest()
            tiers_seen[tier] = {
                s.tier for s in tracer.root.walk() if s.cat == "kernel"
            }
        # identical digests (tier lives outside the identity) ...
        assert digests["numpy"] == digests["native"]
        # ... yet every kernel span knows which tier ran it
        assert tiers_seen["numpy"] == {"numpy"}
        assert tiers_seen["native"] == {"native"}


class TestFallback:
    def test_pipeline_survives_missing_extension(self, no_native, tiny_reads):
        collector = _NoteCollector()
        cfg = PipelineConfig(nprocs=4, k=15, kernel_tier="native")
        res = Pipeline().run(tiny_reads, config=cfg, observers=[collector])
        notes = [n for _, n in collector.notes if "kernel tier fallback" in n]
        assert notes and "numpy" in notes[0]
        ref = Pipeline().run(
            tiny_reads, config=PipelineConfig(nprocs=4, k=15)
        )
        assert res.contig_digest() == ref.contig_digest()

    def test_no_note_when_numpy_requested(self, no_native, tiny_reads):
        collector = _NoteCollector()
        cfg = PipelineConfig(nprocs=4, k=15, kernel_tier="numpy")
        Pipeline().run(tiny_reads, config=cfg, observers=[collector])
        assert not [n for _, n in collector.notes if "fallback" in n]


# -- job service ---------------------------------------------------------


class TestWorkerTier:
    SRC = {
        "kind": "simulate",
        "length": 2000,
        "seed": 51,
        "read_length": 300,
        "stride": 120,
    }

    def test_worker_rejects_unknown_tier(self, tmp_path):
        svc = JobService(tmp_path)
        from repro.service import JobError

        with pytest.raises(JobError, match="kernel tier"):
            svc.worker(kernel_tier="fortran")

    def test_summary_records_resolved_tier(self, tmp_path):
        svc = JobService(tmp_path)
        job_id = svc.submit(self.SRC, {"nprocs": 4, "k": 15})
        svc.run_worker(kernel_tier="numpy")
        assert svc.result(job_id)["kernel_tier"] == "numpy"

    @requires_native
    def test_worker_override_and_digest_parity(self, tmp_path):
        svc = JobService(tmp_path / "a")
        job_id = svc.submit(self.SRC, {"nprocs": 4, "k": 15})
        svc.run_worker(kernel_tier="native")
        summary = svc.result(job_id)
        assert summary["kernel_tier"] == "native"
        ref_svc = JobService(tmp_path / "b")
        ref_id = ref_svc.submit(self.SRC, {"nprocs": 4, "k": 15})
        ref_svc.run_worker(kernel_tier="numpy")
        ref = ref_svc.result(ref_id)
        assert summary["trace_digest"] == ref["trace_digest"]
        assert summary["contigs"] == ref["contigs"]

    def test_fallback_records_numpy(self, no_native, tmp_path):
        svc = JobService(tmp_path)
        job_id = svc.submit(self.SRC, {"nprocs": 4, "k": 15})
        svc.run_worker(kernel_tier="native")
        assert svc.result(job_id)["kernel_tier"] == "numpy"
