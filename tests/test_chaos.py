"""Chaos property suite: any fault plan converges to the clean digest.

The tentpole invariant of the fault-injection work: for *any* seeded
:meth:`FaultPlan.random` plan (bounded ``max_fires`` means every plan
eventually stops injecting), the job pipeline -- across rank crashes,
stalls, corrupted checkpoints, eviction races and simulated worker
deaths with lease-based adoption -- converges to a contig digest
bit-identical to the fault-free run, with every injection and recovery
visible in the job's event log.

``TestChaosSmoke`` is the subprocess version CI runs: one rank crash,
one real SIGKILL, one corrupted checkpoint, gating on digest equality.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    InjectedWorkerDeath,
    checkpoint_corrupt,
    rank_crash,
    worker_kill,
)
from repro.pipeline import Pipeline, PipelineConfig
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.service import JobService

SRC = {
    "kind": "simulate",
    "length": 2500,
    "seed": 51,
    "read_length": 350,
    "stride": 140,
}
CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}

CHAOS_SEEDS = list(range(20))

#: worker generations before we declare a plan non-convergent; random
#: plans carry at most two worker kills, so 12 is far past sufficient
MAX_GENERATIONS = 12


class FakeClock:
    def __init__(self, t: float = 1_000.0) -> None:
        self.t = t

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def reference_digest():
    reads = tile_reads(
        make_genome(GenomeSpec(length=SRC["length"], seed=SRC["seed"])),
        SRC["read_length"],
        SRC["stride"],
    ).reads
    return Pipeline.default().run(reads, PipelineConfig(**CFG)).contig_digest()


class TestChaosProperty:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_any_plan_converges_bit_identical(
        self, tmp_path, seed, reference_digest
    ):
        plan = FaultPlan.random(seed)
        clock = FakeClock()
        svc = JobService(tmp_path, lease_ttl=30.0, clock=clock.now)
        job = svc.submit(SRC, CFG)
        # one injector shared across worker generations: its fire-state
        # is the plan's memory, so injections don't repeat after restarts
        injector = FaultInjector(plan)

        generations = 0
        while generations < MAX_GENERATIONS:
            generations += 1
            worker = svc.worker(
                worker_id=f"w{generations}", fault_injector=injector
            )
            try:
                worker.drain()
            except InjectedWorkerDeath:
                pass  # the worker "process" is gone; spawn the next one
            if svc.status(job).terminal:
                break
            # past every lease TTL and retry backoff the default policy
            # can schedule, so the next generation can claim or adopt
            clock.advance(61.0)

        record = svc.status(job)
        assert record.state == "done", (
            f"seed {seed}: not converged after {generations} generations "
            f"(state={record.state}, error={record.error})"
        )
        assert svc.result(job)["contig_digest"] == reference_digest, (
            f"seed {seed}: digest diverged under plan {plan.to_dict()}"
        )
        # nothing stays pinned once the job is terminal
        assert svc.cache.pinned_files() == set()

        # every injected fault is visible in the durable event log:
        # worker kills as first-class `fault_injected` events, everything
        # else as `fault injected: ...` stage notes
        events = svc.events(job)
        noted = [
            e for e in events
            if e["event"] == "note"
            and e.get("note", "").startswith("fault injected:")
        ]
        killed = [e for e in events if e["event"] == "fault_injected"]
        assert len(noted) + len(killed) == len(injector.events), (
            f"seed {seed}: {len(injector.events)} faults fired but only "
            f"{len(noted) + len(killed)} are visible in the event log"
        )
        # ...and every rank crash that fired left a recovery trace
        crashes = [e for e in injector.events if e["kind"] == "rank_crash"]
        recovery_notes = [
            e for e in events
            if e["event"] == "note"
            and e.get("note", "").startswith("recovery: rank")
        ]
        if crashes:
            assert recovery_notes, f"seed {seed}: crash with no recovery note"
        # each simulated death claimed one extra attempt via adoption
        assert record.attempts == 1 + len(
            [e for e in killed if e.get("mode") == "sim"]
        )

    def test_chaos_plans_exercise_every_site(self):
        """The seed range actually covers all fault kinds (meta-check so
        the property above cannot silently degenerate)."""
        kinds = {
            rule.kind
            for seed in CHAOS_SEEDS
            for rule in FaultPlan.random(seed).rules
        }
        assert kinds == {
            "rank_crash", "stall", "checkpoint_corrupt",
            "cache_evict_race", "worker_kill",
        }


LEASE_TTL = 0.5

WORKER_DRIVER = (
    "import sys\n"
    "from repro.faults import FaultPlan\n"
    "from repro.service import JobService\n"
    f"svc = JobService(sys.argv[1], lease_ttl={LEASE_TTL})\n"
    "plan = FaultPlan.load(sys.argv[2]) if len(sys.argv) > 2 else None\n"
    "svc.run_worker(fault_plan=plan)\n"
)


def _spawn_worker(root, plan_path=None):
    env = dict(os.environ)
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-c", WORKER_DRIVER, str(root)]
    if plan_path is not None:
        argv.append(str(plan_path))
    return subprocess.run(
        argv, env=env, capture_output=True, text=True, timeout=180
    )


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)
class TestChaosSmoke:
    """The CI chaos gate: crash + SIGKILL + corruption, digest-identical."""

    def test_kill_crash_corrupt_converges(self, tmp_path, reference_digest):
        crash = rank_crash(stage="Alignment", superstep=0, rank=1)
        corrupt = checkpoint_corrupt(
            stage="CountKmer", when="save", mode="bitflip"
        )
        plan = FaultPlan(seed=0, rules=(
            corrupt,
            worker_kill(after_stage="DetectOverlap", mode="sigkill"),
            crash,
        ))
        plan_path = tmp_path / "plan.json"
        plan.dump(plan_path)
        # the restarted fleet is not re-armed with the kill (a fresh
        # process would otherwise re-fire it forever: the SIGKILL always
        # beats the killed stage's checkpoint to disk); the crash and the
        # corruption rules do re-arm and must still converge
        resume_path = tmp_path / "plan-resume.json"
        FaultPlan(seed=0, rules=(corrupt, crash)).dump(resume_path)
        root = tmp_path / "svc"
        svc = JobService(root, lease_ttl=LEASE_TTL)
        job = svc.submit(SRC, CFG)

        # generation 1: saves a bit-flipped CountKmer checkpoint, then a
        # real SIGKILL lands the moment DetectOverlap completes
        proc = _spawn_worker(root, plan_path)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        orphan = svc.status(job)
        assert orphan.state == "running" and orphan.attempts == 1
        events = [e["event"] for e in svc.events(job)]
        assert "fault_injected" in events  # durable before the kill

        time.sleep(LEASE_TTL + 0.2)

        # generation 2 (fresh process, fresh injector): adopts, detects
        # the corrupt checkpoint via its checksum frame and recomputes,
        # then recovers the injected rank crash
        proc = _spawn_worker(root, resume_path)
        assert proc.returncode == 0, proc.stderr

        record = svc.status(job)
        assert record.state == "done" and record.attempts == 2
        summary = svc.result(job)
        assert summary["contig_digest"] == reference_digest
        assert summary["recoveries"] == [
            {"stage": "Alignment", "rank": 1, "superstep": 0, "attempt": 1}
        ]
        notes = [
            e["note"] for e in svc.events(job) if e["event"] == "note"
        ]
        assert any("fault injected: rank_crash" in n for n in notes)
        assert any("recovery: rank 1" in n for n in notes)
        assert any(
            "checkpoint unavailable, recomputing" in n for n in notes
        ), "corrupt checkpoint was not detected at load"
        assert svc.cache.pinned_files() == set()
