"""Unit tests for the alpha-beta-gamma machine cost model."""

import math

import pytest

from repro.mpi import MACHINE_PRESETS, MachineModel, cori_haswell, summit_cpu, zero_cost


class TestPresets:
    def test_registry_contains_paper_machines(self):
        assert "cori-haswell" in MACHINE_PRESETS
        assert "summit-cpu" in MACHINE_PRESETS

    def test_preset_factories_return_named_models(self):
        assert cori_haswell().name == "cori-haswell"
        assert summit_cpu().name == "summit-cpu"

    def test_summit_has_simd_penalty(self):
        """The paper: alignment is slower on POWER9 (no SSE/AVX2)."""
        assert summit_cpu().simd_penalty > 1.0
        assert cori_haswell().simd_penalty == 1.0

    def test_summit_network_is_slower_per_rank(self):
        """The paper: Summit has lower network bandwidth per core."""
        assert summit_cpu().alpha > cori_haswell().alpha
        assert summit_cpu().beta > cori_haswell().beta

    def test_summit_has_more_memory(self):
        """Table 1: 512 GB vs 128 GB per node."""
        assert summit_cpu().node_memory_gb > cori_haswell().node_memory_gb

    def test_zero_cost_charges_nothing(self):
        m = zero_cost()
        assert m.op_time(1e9) == 0.0
        assert m.collective_time("alltoallv", 64, 1e9, 1e8) == 0.0


class TestOpTime:
    def test_linear_in_ops(self):
        m = cori_haswell()
        assert m.op_time(2000) == pytest.approx(2 * m.op_time(1000))

    def test_alignment_kind_applies_penalty(self):
        m = summit_cpu()
        assert m.op_time(1000, kind="alignment") == pytest.approx(
            m.op_time(1000) * m.simd_penalty
        )

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            cori_haswell().op_time(-1)


class TestCollectiveTime:
    @pytest.mark.parametrize(
        "kind",
        ["bcast", "allgather", "gather", "reduce", "allreduce",
         "reduce_scatter", "alltoall", "alltoallv", "scatter", "barrier"],
    )
    def test_nonnegative_and_zero_for_single_rank(self, kind):
        m = cori_haswell()
        assert m.collective_time(kind, 1, 1000, 1000) == 0.0
        assert m.collective_time(kind, 16, 1000, 100) > 0.0

    def test_monotone_in_bytes(self):
        m = cori_haswell()
        small = m.collective_time("allgather", 16, 1_000, 100)
        large = m.collective_time("allgather", 16, 1_000_000, 100_000)
        assert large > small

    def test_alltoall_latency_grows_linearly_with_p(self):
        """Pairwise exchange: P-1 latency rounds (the latency-bound regime
        behind the paper's non-scaling TrReduction/ExtractContig stages)."""
        m = cori_haswell()
        t16 = m.collective_time("alltoallv", 16, 0, 0)
        t64 = m.collective_time("alltoallv", 64, 0, 0)
        assert t64 == pytest.approx(t16 * 63 / 15)

    def test_bcast_latency_grows_logarithmically(self):
        m = cori_haswell()
        t16 = m.collective_time("bcast", 16, 0, 1)
        t256 = m.collective_time("bcast", 256, 0, 1)
        assert t256 / t16 == pytest.approx(math.log2(256) / math.log2(16))

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            cori_haswell().collective_time("gossip", 4, 0, 0)

    def test_invalid_sizes_rejected(self):
        m = cori_haswell()
        with pytest.raises(ValueError):
            m.collective_time("bcast", 0, 0, 0)
        with pytest.raises(ValueError):
            m.collective_time("bcast", 4, -1, 0)


class TestVolumeScale:
    def test_scales_compute_and_bytes_not_latency(self):
        base = cori_haswell()
        scaled = base.scaled(1000.0)
        assert scaled.op_time(100) == pytest.approx(base.op_time(100) * 1000)
        # pure-latency collective unchanged
        assert scaled.collective_time("barrier", 64) == pytest.approx(
            base.collective_time("barrier", 64)
        )
        # bandwidth term scales
        assert scaled.collective_time("allgather", 4, 1000, 500) > base.collective_time(
            "allgather", 4, 1000, 500
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            cori_haswell().scaled(0)

    def test_nodes_for_ranks(self):
        assert cori_haswell().nodes_for_ranks(64) == pytest.approx(2.0)

    def test_with_ranks_per_node(self):
        m = cori_haswell().with_ranks_per_node(16)
        assert m.ranks_per_node == 16
        assert m.name == "cori-haswell"
