"""Unit tests for the QUAST-style quality metrics."""

import numpy as np
import pytest

from repro.quality import evaluate_assembly
from repro.seq import GenomeSpec, dna, make_genome


@pytest.fixture(scope="module")
def ref():
    return make_genome(GenomeSpec(length=5000, seed=61))


class TestCompleteness:
    def test_perfect_assembly(self, ref):
        report = evaluate_assembly([ref.copy()], ref, k=21)
        assert report.completeness == pytest.approx(1.0)
        assert report.misassemblies == 0
        assert report.longest_contig == 5000
        assert report.n_contigs == 1

    def test_reverse_complement_contig_counts(self, ref):
        report = evaluate_assembly([dna.revcomp(ref)], ref, k=21)
        assert report.completeness == pytest.approx(1.0)
        assert report.misassemblies == 0

    def test_half_genome(self, ref):
        report = evaluate_assembly([ref[:2500].copy()], ref, k=21)
        assert 0.45 < report.completeness < 0.55

    def test_overlapping_contigs_not_double_counted(self, ref):
        contigs = [ref[:3000].copy(), ref[2000:5000].copy()]
        report = evaluate_assembly(contigs, ref, k=21)
        assert report.completeness == pytest.approx(1.0, abs=0.01)
        assert report.covered_bases <= 5000

    def test_empty_assembly(self, ref):
        report = evaluate_assembly([], ref, k=21)
        assert report.completeness == 0.0
        assert report.n_contigs == 0
        assert report.longest_contig == 0


class TestMisassembly:
    def test_chimeric_contig_detected(self, ref):
        """A contig gluing two distant genome regions is a misassembly."""
        chimera = np.concatenate([ref[:1000], ref[3500:4500]])
        report = evaluate_assembly([chimera], ref, k=21)
        assert report.misassemblies == 1

    def test_inversion_detected(self, ref):
        chimera = np.concatenate([ref[:1000], dna.revcomp(ref[1000:2000])])
        report = evaluate_assembly([chimera], ref, k=21)
        assert report.misassemblies == 1

    def test_adjacent_blocks_are_fine(self, ref):
        """Contigs matching the reference contiguously are not flagged."""
        report = evaluate_assembly([ref[100:4000].copy()], ref, k=21)
        assert report.misassemblies == 0

    def test_foreign_contig_unaligned(self, ref):
        rng = np.random.default_rng(99)
        foreign = dna.random_codes(rng, 800)
        report = evaluate_assembly([foreign], ref, k=21)
        assert report.unaligned_contigs == 1
        assert report.misassemblies == 0


class TestLengthStats:
    def test_n50(self, ref):
        contigs = [ref[:2500].copy(), ref[2500:4000].copy(), ref[4000:5000].copy()]
        report = evaluate_assembly(contigs, ref, k=21)
        # lengths 2500, 1500, 1000; total 5000; N50 = 2500
        assert report.n50 == 2500
        assert report.total_bases == 5000

    def test_ng50_uses_reference_length(self, ref):
        contigs = [ref[:1000].copy()]
        report = evaluate_assembly(contigs, ref, k=21)
        assert report.ng50 == 1000  # only contig covers < half the genome

    def test_duplication_ratio(self, ref):
        contigs = [ref[:2000].copy(), ref[:2000].copy()]
        report = evaluate_assembly(contigs, ref, k=21)
        assert report.duplication_ratio > 1.5

    def test_row_rendering(self, ref):
        report = evaluate_assembly([ref.copy()], ref, k=21)
        text = report.row()
        assert "completeness" in text and "misassembled" in text
