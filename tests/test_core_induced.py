"""Unit tests for the induced-subgraph redistribution (Fig. 2)."""

import numpy as np
import pytest

from repro.core import (
    connected_components,
    contig_sizes_distributed,
    induced_subgraph,
    induced_subgraph_naive,
    partition_contigs,
)
from repro.sparse import DistSparseMatrix, DistVector
from repro.sparse.types import OVERLAP_DTYPE


def chain_graph(grid, n, chains):
    rows, cols, suffixes = [], [], []
    for chain in chains:
        for u, v in zip(chain, chain[1:]):
            rows += [u, v]
            cols += [v, u]
            suffixes += [u * 100 + v, v * 100 + u]
    vals = np.zeros(len(rows), dtype=OVERLAP_DTYPE)
    vals["suffix"] = suffixes
    return DistSparseMatrix.from_global_coo(
        grid, (n, n), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), vals,
    )


def setup(grid, n, chains):
    L = chain_graph(grid, n, chains)
    labels = connected_components(L).labels
    sizes = contig_sizes_distributed(labels)
    p, _ = partition_contigs(labels, sizes)
    return L, p


CHAINS = [[0, 1, 2, 3], [4, 5], [6, 7, 8], [9, 10, 11, 12]]


class TestInducedSubgraph:
    def test_edges_preserved_exactly(self, grid):
        """Union of local edge sets == edges of L with assigned endpoints
        (invariant 7 of DESIGN.md), payloads intact."""
        n = 13
        L, p = setup(grid, n, CHAINS)
        graphs = induced_subgraph(L, p)
        collected = {}
        for g in graphs:
            for e in range(g.coo.nnz):
                gu = int(g.global_ids[g.coo.rows[e]])
                gv = int(g.global_ids[g.coo.cols[e]])
                collected[(gu, gv)] = int(g.coo.vals[e]["suffix"])
        expected = {}
        rows, cols, vals = L.to_global_coo()
        p_global = p.to_global()
        for r, c, v in zip(rows, cols, vals):
            if p_global[r] >= 0 and p_global[c] >= 0:
                expected[(int(r), int(c))] = int(v["suffix"])
        assert collected == expected

    def test_each_rank_gets_its_assigned_contigs(self, grid4):
        L, p = setup(grid4, 13, CHAINS)
        graphs = induced_subgraph(L, p)
        p_global = p.to_global()
        for rank, g in enumerate(graphs):
            for gid in g.global_ids:
                assert p_global[gid] == rank

    def test_local_reindexing_is_compact(self, grid4):
        L, p = setup(grid4, 13, CHAINS)
        for g in induced_subgraph(L, p):
            if g.n_vertices:
                assert g.coo.shape == (g.n_vertices, g.n_vertices)
                used = np.unique(np.concatenate([g.coo.rows, g.coo.cols]))
                assert used.max() < g.n_vertices
                assert np.array_equal(np.sort(g.global_ids), g.global_ids)

    def test_edge_counts(self, grid4):
        L, p = setup(grid4, 13, CHAINS)
        total_edges = sum(g.n_edges for g in induced_subgraph(L, p))
        # chains of 4,2,3,4 vertices -> 3+1+2+3 = 9 undirected edges
        assert total_edges == 9

    def test_naive_variant_identical_output(self, grid):
        L, p = setup(grid, 13, CHAINS)
        a = induced_subgraph(L, p)
        b = induced_subgraph_naive(L, p)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.global_ids, gb.global_ids)
            ka = sorted(zip(ga.coo.rows, ga.coo.cols, ga.coo.vals["suffix"]))
            kb = sorted(zip(gb.coo.rows, gb.coo.cols, gb.coo.vals["suffix"]))
            assert ka == kb

    def test_paper_scheme_cheaper_than_full_allgather(self):
        """Row-allgather + transposed p2p must beat the grid-wide allgather
        in modeled per-rank time (the reason Fig. 2's scheme exists): the
        total byte volume is the same, but the paper's scheme spreads it
        over sqrt(P) concurrent small collectives."""
        from repro.mpi import ProcGrid, SimWorld, cori_haswell

        n = 1600
        chains = [list(range(i, i + 8)) for i in range(0, n, 8)]

        def gather_time(fn):
            w = SimWorld(16, cori_haswell())
            g = ProcGrid(w)
            L, p = setup(g, n, chains)
            w.log.clear()
            fn(L, p)
            return max(
                e.modeled_seconds for e in w.log.events if e.op == "allgather"
            )

        paper = gather_time(induced_subgraph)
        naive = gather_time(induced_subgraph_naive)
        assert paper < naive

    def test_uses_transposed_p2p(self):
        from repro.mpi import ProcGrid, SimWorld, cori_haswell

        w = SimWorld(9, cori_haswell())
        g = ProcGrid(w)
        L, p = setup(g, 13, CHAINS)
        w.log.clear()
        induced_subgraph(L, p)
        ops = {e.op for e in w.log.events}
        assert "ptp" in ops  # the transposed-processor exchange

    def test_unassigned_vertices_dropped(self, grid4):
        # a singleton (vertex 4 isolated) must appear in no local graph
        L, p = setup(grid4, 5, [[0, 1, 2, 3]])
        graphs = induced_subgraph(L, p)
        all_ids = np.concatenate(
            [g.global_ids for g in graphs if g.n_vertices]
        )
        assert 4 not in all_ids
