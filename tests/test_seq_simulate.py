"""Unit tests for the genome/read simulator."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import GenomeSpec, dna, make_genome, sample_reads, tile_reads


class TestGenome:
    def test_length_and_determinism(self):
        spec = GenomeSpec(length=5000, seed=42)
        g1, g2 = make_genome(spec), make_genome(spec)
        assert g1.size == 5000
        assert np.array_equal(g1, g2)

    def test_different_seeds_differ(self):
        a = make_genome(GenomeSpec(length=1000, seed=1))
        b = make_genome(GenomeSpec(length=1000, seed=2))
        assert not np.array_equal(a, b)

    def test_repeats_create_duplicate_segments(self):
        spec = GenomeSpec(
            length=20_000, n_repeats=3, repeat_length=500, repeat_copies=3, seed=7
        )
        g = make_genome(spec)
        text = dna.decode(g)
        # at least one 200bp window occurs twice
        found = any(text.count(text[i : i + 200]) >= 2 for i in range(0, 19_000, 400))
        assert found

    def test_invalid_specs(self):
        with pytest.raises(SequenceError):
            make_genome(GenomeSpec(length=0))
        with pytest.raises(SequenceError):
            make_genome(
                GenomeSpec(length=100, n_repeats=1, repeat_length=90, repeat_copies=2)
            )


class TestSampleReads:
    def test_reaches_target_depth(self):
        g = make_genome(GenomeSpec(length=10_000, seed=1))
        rs = sample_reads(g, depth=10, mean_length=500, rng=2)
        assert rs.depth() >= 10

    def test_error_free_reads_are_substrings(self):
        g = make_genome(GenomeSpec(length=5000, seed=3))
        rs = sample_reads(g, depth=3, mean_length=300, rng=4, error_rate=0.0)
        text = dna.decode(g)
        for codes, rec in zip(rs.reads, rs.records):
            s = dna.decode(codes)
            if rec.strand == -1:
                s = dna.revcomp_str(s)
            assert s in text
            assert rec.nerrors == 0

    def test_records_track_positions(self):
        g = make_genome(GenomeSpec(length=5000, seed=5))
        rs = sample_reads(g, depth=2, mean_length=200, rng=6, error_rate=0.0)
        for codes, rec in zip(rs.reads, rs.records):
            frag = g[rec.start : rec.start + rec.length]
            expected = dna.revcomp(frag) if rec.strand == -1 else frag
            assert np.array_equal(codes, expected)

    def test_error_rate_roughly_respected(self):
        g = make_genome(GenomeSpec(length=20_000, seed=7))
        rs = sample_reads(g, depth=5, mean_length=500, rng=8, error_rate=0.05)
        total = sum(len(r) for r in rs.reads)
        errors = sum(rec.nerrors for rec in rs.records)
        assert 0.02 < errors / total < 0.08

    def test_both_strands_sampled(self):
        g = make_genome(GenomeSpec(length=5000, seed=9))
        rs = sample_reads(g, depth=5, mean_length=200, rng=10)
        strands = {rec.strand for rec in rs.records}
        assert strands == {1, -1}

    def test_strand_flips_disabled(self):
        g = make_genome(GenomeSpec(length=5000, seed=9))
        rs = sample_reads(g, depth=2, mean_length=200, rng=10, strand_flips=False)
        assert all(rec.strand == 1 for rec in rs.records)

    def test_genome_shorter_than_read_rejected(self):
        g = make_genome(GenomeSpec(length=100, seed=1))
        with pytest.raises(SequenceError):
            sample_reads(g, depth=1, mean_length=200, rng=0)

    def test_mean_length_stat(self):
        g = make_genome(GenomeSpec(length=10_000, seed=1))
        rs = sample_reads(g, depth=5, mean_length=400, rng=3)
        assert 250 < rs.mean_length() < 600


class TestTileReads:
    def test_tiling_covers_genome(self):
        g = make_genome(GenomeSpec(length=2000, seed=1))
        rs = tile_reads(g, 300, 100)
        covered = np.zeros(2000, dtype=bool)
        for rec in rs.records:
            covered[rec.start : rec.start + rec.length] = True
        assert covered.all()

    def test_consecutive_overlap(self):
        g = make_genome(GenomeSpec(length=2000, seed=1))
        rs = tile_reads(g, 300, 100)
        for a, b in zip(rs.records, rs.records[1:]):
            assert b.start - a.start <= 100

    def test_alternate_strand_pattern(self):
        g = make_genome(GenomeSpec(length=2000, seed=1))
        rs = tile_reads(g, 300, 100, "alternate")
        strands = [rec.strand for rec in rs.records]
        assert strands[0] == 1 and strands[1] == -1

    def test_invalid_parameters(self):
        g = make_genome(GenomeSpec(length=2000, seed=1))
        with pytest.raises(SequenceError):
            tile_reads(g, 100, 100)
        with pytest.raises(SequenceError):
            tile_reads(g, 100, 50, "zigzag")
