"""Unit tests for distributed k-mer counting and the reliable filter."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import KmerError
from repro.kmer import canonical_kmers, count_kmers, encode_kmers
from repro.seq import DistReadStore, dna


def serial_counts(reads, k):
    """Reference: canonical k-mer multiplicities computed serially."""
    counts = Counter()
    for codes in reads:
        kmers = encode_kmers(codes, k)
        if kmers.size:
            canon, _ = canonical_kmers(kmers, k)
            counts.update(int(x) for x in canon)
    return counts


def random_reads(n=20, lo=30, hi=60, seed=0):
    rng = np.random.default_rng(seed)
    return [dna.random_codes(rng, int(rng.integers(lo, hi))) for _ in range(n)]


class TestCounting:
    def test_matches_serial_reference(self, grid):
        reads = random_reads(seed=1)
        store = DistReadStore.from_global(grid, reads)
        k = 9
        table = count_kmers(store, k, reliable_lo=1)
        ref = serial_counts(reads, k)
        got = {}
        for kmers, counts in zip(table.kmers_by_owner, table.counts_by_owner):
            for value, count in zip(kmers, counts):
                got[int(value)] = int(count)
        assert got == dict(ref)

    def test_reliable_lower_bound_drops_singletons(self, grid4):
        reads = random_reads(seed=2)
        store = DistReadStore.from_global(grid4, reads)
        k = 9
        ref = serial_counts(reads, k)
        table = count_kmers(store, k, reliable_lo=2)
        kept = {
            int(v)
            for kmers in table.kmers_by_owner
            for v in kmers
        }
        expected = {v for v, c in ref.items() if c >= 2}
        assert kept == expected

    def test_reliable_upper_bound_drops_repeats(self, grid4):
        # one read repeated 10x -> all its kmers have multiplicity >= 10
        base = dna.encode("ACGTTGCAACGTGGCATTGCAGGA")
        reads = [base.copy() for _ in range(10)]
        store = DistReadStore.from_global(grid4, reads)
        table = count_kmers(store, 7, reliable_lo=1, reliable_hi=5)
        assert table.total == 0

    def test_counts_invariant_across_grids(self):
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        reads = random_reads(seed=3)
        totals = []
        for p in (1, 4, 9, 16):
            grid = ProcGrid(SimWorld(p, zero_cost()))
            store = DistReadStore.from_global(grid, reads)
            table = count_kmers(store, 11, reliable_lo=1)
            totals.append(table.total)
        assert len(set(totals)) == 1

    def test_ids_are_contiguous_and_disjoint(self, grid4):
        reads = random_reads(seed=4)
        store = DistReadStore.from_global(grid4, reads)
        table = count_kmers(store, 9, reliable_lo=1)
        assert table.offsets[0] == 0
        assert np.all(np.diff(table.offsets) >= 0)
        sizes = [len(k) for k in table.kmers_by_owner]
        assert np.array_equal(np.diff(table.offsets), sizes)

    def test_parameter_validation(self, grid4):
        store = DistReadStore.from_global(grid4, random_reads(4))
        with pytest.raises(KmerError):
            count_kmers(store, 9, reliable_lo=0)
        with pytest.raises(KmerError):
            count_kmers(store, 9, reliable_lo=3, reliable_hi=2)


class TestLookup:
    def test_lookup_resolves_known_and_unknown(self, grid4):
        reads = random_reads(seed=5)
        store = DistReadStore.from_global(grid4, reads)
        k = 9
        table = count_kmers(store, k, reliable_lo=1)
        known = table.kmers_by_owner[0][:3] if table.kmers_by_owner[0].size else None
        bogus = np.array([np.uint64(2**63 - 1)], dtype=np.uint64)
        requests = [
            known if known is not None else np.empty(0, dtype=np.uint64),
            bogus,
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.uint64),
        ]
        answers = table.lookup(requests)
        if known is not None:
            assert np.all(answers[0] >= 0)
        assert answers[1][0] == -1

    def test_lookup_ids_consistent_with_offsets(self, grid4):
        reads = random_reads(seed=6)
        store = DistReadStore.from_global(grid4, reads)
        table = count_kmers(store, 9, reliable_lo=1)
        # ask every owner for its own kmers
        requests = [table.kmers_by_owner[r] for r in range(4)]
        answers = table.lookup(requests)
        for r in range(4):
            n = table.kmers_by_owner[r].size
            expected = table.offsets[r] + np.arange(n)
            assert np.array_equal(answers[r], expected)
