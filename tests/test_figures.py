"""Tests for the ASCII figure renderers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import ascii_line_chart, stacked_bar_chart


class TestLineChart:
    def test_markers_and_legend(self):
        text = ascii_line_chart(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
            width=20, height=6,
        )
        assert "o" in text and "x" in text
        assert "legend: o a   x b" in text

    def test_title_and_axis_labels(self):
        text = ascii_line_chart(
            {"s": [(1, 1), (10, 10)]},
            title="T", xlabel="P", ylabel="sec", width=20, height=6,
        )
        assert text.splitlines()[0] == "T"
        assert "[y: sec]" in text
        assert "(P)" in text

    def test_axis_extremes_labelled(self):
        text = ascii_line_chart(
            {"s": [(2, 5), (64, 500)]}, width=24, height=6
        )
        assert "500" in text and "5" in text
        assert "2" in text and "64" in text

    def test_monotone_series_monotone_rows(self):
        """A strictly decreasing series must render in non-decreasing row
        order (top row = max)."""
        text = ascii_line_chart(
            {"s": [(1, 100), (2, 10), (4, 1)]},
            width=30, height=10, logy=True,
        )
        rows = [
            i
            for i, line in enumerate(text.splitlines())
            if "o" in line and "|" in line
        ]
        assert rows == sorted(rows)

    def test_log_axes_reject_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [(0, 1), (2, 2)]}, logx=True)
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [(1, 0), (2, 2)]}, logy=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": []})

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [(1, 1)]}, width=5, height=2)

    def test_single_point(self):
        text = ascii_line_chart({"s": [(3, 7)]}, width=12, height=4)
        assert "o" in text

    @given(
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_grid_dimensions_stable(self, n, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        pts = [(float(i + 1), float(rng.uniform(0.1, 9))) for i in range(n)]
        text = ascii_line_chart({"s": pts}, width=30, height=8)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 8


class TestStackedBars:
    STACKS = {"a": [1.0, 2.0], "b": [3.0, 2.0]}

    def test_totals_shown(self):
        text = stacked_bar_chart(["x", "y"], self.STACKS, width=20)
        assert "| 4" in text

    def test_proportional_bar_lengths(self):
        text = stacked_bar_chart(
            ["x", "y"], {"a": [2.0, 4.0]}, width=20
        )
        rows = [l for l in text.splitlines() if l.startswith(("x", "y"))]
        assert rows[0].count("#") == 10
        assert rows[1].count("#") == 20

    def test_normalized_bars_full_width(self):
        text = stacked_bar_chart(
            ["x", "y"], self.STACKS, width=20, normalize=True
        )
        for row in text.splitlines():
            if row.startswith(("x", "y")):
                filled = sum(row.count(c) for c in "#=")
                assert filled == 20

    def test_layer_shares_sum_to_bar(self):
        text = stacked_bar_chart(
            ["x"], {"a": [1.0], "b": [3.0]}, width=40
        )
        bar_row = next(l for l in text.splitlines() if l.startswith("x"))
        assert bar_row.count("#") + bar_row.count("=") == 40
        # a:b = 1:3 split
        assert bar_row.count("#") == 10
        assert bar_row.count("=") == 30

    def test_legend_lists_layers(self):
        text = stacked_bar_chart(["x"], {"a": [1.0], "b": [3.0]})
        assert "legend: # a   = b" in text

    def test_zero_total_bar(self):
        text = stacked_bar_chart(["x"], {"a": [0.0]}, width=10)
        assert "| 0" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            stacked_bar_chart([], {"a": []})
        with pytest.raises(ValueError):
            stacked_bar_chart(["x"], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            stacked_bar_chart(["x"], {"a": [-1.0]})
