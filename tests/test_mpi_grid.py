"""Unit tests for the sqrt(P) x sqrt(P) process grid."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.mpi import ProcGrid, SimWorld, zero_cost


class TestConstruction:
    @pytest.mark.parametrize("p", [1, 4, 9, 16, 25])
    def test_square_counts_accepted(self, p):
        g = ProcGrid(SimWorld(p, zero_cost()))
        assert g.q * g.q == p

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 18, 32])
    def test_non_square_counts_rejected(self, p):
        with pytest.raises(GridError):
            ProcGrid(SimWorld(p, zero_cost()))


class TestCoordinates:
    def test_rank_coords_roundtrip(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        for r in range(9):
            i, j = g.coords_of(r)
            assert g.rank_of(i, j) == r

    def test_transpose_is_involution(self):
        g = ProcGrid(SimWorld(16, zero_cost()))
        for r in range(16):
            assert g.transpose_rank(g.transpose_rank(r)) == r

    def test_transpose_partners_diagonal_fixed(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        partners = g.transpose_partners()
        for i in range(3):
            assert partners[g.rank_of(i, i)] == g.rank_of(i, i)

    def test_out_of_range_coords(self):
        g = ProcGrid(SimWorld(4, zero_cost()))
        with pytest.raises(GridError):
            g.rank_of(2, 0)
        with pytest.raises(GridError):
            g.coords_of(4)


class TestCommunicators:
    def test_row_comms_cover_grid_rows(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        for i, comm in enumerate(g.row_comms):
            assert comm.ranks == [g.rank_of(i, j) for j in range(3)]

    def test_col_comms_cover_grid_cols(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        for j, comm in enumerate(g.col_comms):
            assert comm.ranks == [g.rank_of(i, j) for i in range(3)]


class TestBlockLayouts:
    def test_vector_blocks_concatenate_to_row_blocks(self):
        """The layout invariant the induced-subgraph algorithm exploits:
        the P-way vector blocks of grid row i's ranks tile exactly grid row
        i's matrix row block."""
        g = ProcGrid(SimWorld(16, zero_cost()))
        n = 103
        for i in range(g.q):
            rlo, rhi = g.row_block(n, i)
            vlo = g.vec_block(n, g.rank_of(i, 0))[0]
            vhi = g.vec_block(n, g.rank_of(i, g.q - 1))[1]
            assert (vlo, vhi) == (rlo, rhi)

    def test_owner_of_row_matches_blocks(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        n = 50
        rows = np.arange(n)
        owners = np.asarray(g.owner_of_row(n, rows))
        for i in range(g.q):
            lo, hi = g.row_block(n, i)
            assert np.all(owners[lo:hi] == i)

    def test_owner_of_vec_matches_blocks(self):
        g = ProcGrid(SimWorld(4, zero_cost()))
        n = 11
        idx = np.arange(n)
        owners = np.asarray(g.owner_of_vec(n, idx))
        for r in range(4):
            lo, hi = g.vec_block(n, r)
            assert np.all(owners[lo:hi] == r)

    def test_vec_sizes_sum_to_n(self):
        g = ProcGrid(SimWorld(9, zero_cost()))
        assert g.vec_sizes(100).sum() == 100
