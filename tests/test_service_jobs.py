"""Acceptance tests for the job engine (scheduler + API facade).

Headline scenario from the PR issue: two jobs on the same reads with
different contig-stage knobs -- the second must skip every upstream stage
via shared-cache hits -- plus orphan adoption and pin-safe eviction.
"""

import pytest

from repro.pipeline import PipelineObserver
from repro.service import (
    JobError,
    JobService,
    JobSpec,
    materialize_spec,
)

SRC = {
    "kind": "simulate",
    "length": 2500,
    "seed": 51,
    "read_length": 350,
    "stride": 140,
}
CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}


@pytest.fixture
def svc(tmp_path):
    return JobService(tmp_path)


class TestMaterializeSpec:
    def test_simulate_is_deterministic(self):
        r1, c1 = materialize_spec(JobSpec(source=SRC, config=CFG))
        r2, c2 = materialize_spec(JobSpec(source=SRC, config=CFG))
        assert len(r1) == len(r2)
        assert all((a == b).all() for a, b in zip(r1, r2))
        assert c1 == c2 and c1.k == 17

    def test_unknown_source_kind_rejected(self):
        with pytest.raises(JobError):
            materialize_spec(JobSpec(source={"kind": "carrier-pigeon"}))

    def test_bad_config_key_rejected(self):
        with pytest.raises(JobError):
            materialize_spec(JobSpec(source=SRC, config={"warp_speed": 9}))


class TestWorkerExecution:
    def test_single_job_end_to_end(self, svc):
        job_id = svc.submit(SRC, CFG, owner="alice")
        done = svc.run_worker()
        assert [r.job_id for r in done] == [job_id]
        record = svc.status(job_id)
        assert record.state == "done"
        assert all(v == "done" for v in record.progress.values())
        summary = svc.result(job_id)
        assert summary["contigs"] == 1 and summary["total_bases"] == 2500
        assert summary["stages_cached"] == 0
        kinds = [e["event"] for e in svc.events(job_id)]
        assert kinds[0] == "submitted" and kinds[-1] == "done"
        assert kinds.count("stage_start") == 5 == kinds.count("stage_end")

    def test_cross_job_artifact_reuse(self, svc):
        """The headline: job B reuses job A's upstream artifacts."""
        a = svc.submit(SRC, CFG, owner="alice")
        b = svc.submit(SRC, {**CFG, "partition_method": "greedy"}, owner="bob")
        svc.run_worker()
        ra, rb = svc.result(a), svc.result(b)
        assert ra["stages_cached"] == 0 and ra["cache_hits"] == 0
        assert rb["stages_cached"] == 4 and rb["cache_hits"] == 4
        prog = svc.status(b).progress
        assert [prog[s] for s in
                ("CountKmer", "DetectOverlap", "Alignment", "TrReduction")
                ] == ["cached"] * 4
        assert prog["ExtractContig"] == "done"
        # same reads, same genome: both knobs produce the same assembly
        assert ra["total_bases"] == rb["total_bases"] == 2500

    def test_priority_runs_first(self, svc):
        lo = svc.submit(SRC, CFG, priority=0)
        hi = svc.submit(SRC, CFG, priority=7)
        done = svc.run_worker()
        assert [r.job_id for r in done] == [hi, lo]

    def test_identical_specs_share_everything(self, svc):
        a = svc.submit(SRC, CFG)
        b = svc.submit(SRC, CFG)
        svc.run_worker()
        assert svc.result(b)["stages_cached"] == 5
        assert svc.result(b)["contig_digest"] == svc.result(a)["contig_digest"]

    def test_partial_job_with_until(self, svc):
        job_id = svc.submit(SRC, CFG, until="TrReduction")
        svc.run_worker()
        summary = svc.result(job_id)
        assert summary["contigs"] is None
        assert summary["stages_run"] == [
            "CountKmer", "DetectOverlap", "Alignment", "TrReduction",
        ]

    def test_failed_job_records_error(self, svc):
        job_id = svc.submit(SRC, {**CFG, "bogus_knob": 1})
        done = svc.run_worker()
        assert done[0].state == "failed"
        record = svc.status(job_id)
        assert "bogus_knob" in record.error
        with pytest.raises(JobError):
            svc.result(job_id)

    def test_idle_worker_returns_empty(self, svc):
        assert svc.run_worker() == []

    def test_max_jobs_bounds_drain(self, svc):
        svc.submit(SRC, CFG)
        svc.submit(SRC, CFG)
        assert len(svc.run_worker(max_jobs=1)) == 1
        assert len(svc.list_jobs(state="queued")) == 1


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, svc):
        job_id = svc.submit(SRC, CFG)
        svc.cancel(job_id)
        assert svc.run_worker() == []
        assert svc.status(job_id).state == "cancelled"

    def test_cancel_mid_run_stops_at_stage_boundary(self, svc):
        job_id = svc.submit(SRC, CFG)

        class CancelAfterOverlap(PipelineObserver):
            def on_stage_end(self, stage, ctx, timing):
                if stage == "DetectOverlap":
                    svc.cancel(job_id)

        worker = svc.worker(observers=[CancelAfterOverlap()])
        done = worker.drain()
        assert done[0].state == "cancelled"
        record = svc.status(job_id)
        assert record.progress["DetectOverlap"] == "done"
        assert record.progress["ExtractContig"] == "queued"
        assert "cancelling" in [e["event"] for e in svc.events(job_id)]

    def test_cancelled_jobs_artifacts_unpinned(self, svc):
        job_id = svc.submit(SRC, CFG)

        class CancelEarly(PipelineObserver):
            def on_stage_end(self, stage, ctx, timing):
                if stage == "CountKmer":
                    svc.cancel(job_id)

        svc.worker(observers=[CancelEarly()]).drain()
        assert svc.cache.pinned_files() == set()


class TestAdoptionAndResume:
    def test_resume_requeues_expired_orphans(self, tmp_path):
        clock = [1000.0]
        svc = JobService(tmp_path, lease_ttl=5.0, clock=lambda: clock[0])
        svc.submit(SRC, CFG)
        claimed = svc.store.claim_next("dead-worker")
        assert claimed is not None
        assert svc.resume() == []  # lease still live
        clock[0] += 6.0
        assert svc.resume() == [claimed.job_id]
        done = svc.run_worker()
        assert done[0].state == "done" and done[0].attempts == 2

    def test_eviction_never_touches_running_jobs_pins(self, tmp_path):
        """A tight cache budget must not evict a running job's artifacts."""
        svc = JobService(tmp_path, cache_budget_mb=0.001)  # 1 kB: everything
        job_id = svc.submit(SRC, CFG)                      # is over budget
        done = svc.run_worker()
        assert done[0].state == "done"
        # every stage recorded as executed, none lost to mid-run eviction
        assert svc.result(job_id)["stages_cached"] == 0
        assert svc.cache.evictions == 0  # all files were pinned while running
        # after the job finished its pins dropped: gc may now evict
        stats = svc.gc()
        assert len(stats["gc_evicted"]) == 5
        assert svc.cache.total_bytes() == 0


class TestFacade:
    def test_events_unknown_job_raises(self, svc):
        with pytest.raises(JobError):
            svc.events("j00099")

    def test_submit_requires_source_or_spec(self, svc):
        with pytest.raises(JobError):
            svc.submit()

    def test_submit_prebuilt_spec(self, svc):
        spec = JobSpec(source=SRC, config=CFG, name="prebuilt")
        job_id = svc.submit(spec=spec, owner="carol", priority=2)
        record = svc.status(job_id)
        assert record.spec.name == "prebuilt" and record.priority == 2

    def test_multitenant_listing(self, svc):
        svc.submit(SRC, CFG, owner="alice")
        svc.submit(SRC, CFG, owner="bob")
        svc.submit(SRC, CFG, owner="alice")
        assert len(svc.list_jobs(owner="alice")) == 2
        assert len(svc.list_jobs()) == 3
