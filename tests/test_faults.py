"""Deterministic fault injection and recovery (``repro.faults``).

The contract under test: a seeded :class:`FaultPlan` injects rank
crashes, stalls, checkpoint corruption, eviction races and worker kills
at well-defined sites; every injection is visible in notes/event logs;
and once the plan stops injecting, the pipeline converges to a contig
digest bit-identical to the fault-free run.
"""

import json

import pytest

from repro.errors import FaultPlanError, RankFailure
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedWorkerDeath,
    RetryPolicy,
    cache_evict_race,
    checkpoint_corrupt,
    classify_failure,
    rank_crash,
    stall,
    worker_kill,
)
from repro.pipeline import (
    CheckpointLoadError,
    CollectingObserver,
    Pipeline,
    PipelineConfig,
)
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.service import JobService
from repro.service.store import JobSpec, JobStore

SRC = {
    "kind": "simulate",
    "length": 2500,
    "seed": 51,
    "read_length": 350,
    "stride": 140,
}
CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}


@pytest.fixture(scope="module")
def reads():
    return tile_reads(
        make_genome(GenomeSpec(length=SRC["length"], seed=SRC["seed"])),
        SRC["read_length"],
        SRC["stride"],
    ).reads


@pytest.fixture(scope="module")
def cfg():
    return PipelineConfig(**CFG)


@pytest.fixture(scope="module")
def reference(reads, cfg):
    """The fault-free run every faulted run must converge to."""
    return Pipeline.default().run(reads, cfg)


class FakeClock:
    """An advanceable clock for lease/backoff tests (no real sleeping)."""

    def __init__(self, t: float = 1_000.0) -> None:
        self.t = t

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultRule(kind="meteor_strike").validate()
        with pytest.raises(FaultPlanError, match="rank"):
            FaultRule(kind="rank_crash").validate()
        with pytest.raises(FaultPlanError, match="seconds"):
            stall(rank=0, seconds=1.0)  # fine
            FaultRule(kind="stall", rank=0, seconds=0.0).validate()
        with pytest.raises(FaultPlanError, match="mode"):
            FaultRule(kind="checkpoint_corrupt", mode="shred").validate()
        with pytest.raises(FaultPlanError, match="when"):
            FaultRule(
                kind="checkpoint_corrupt", mode="truncate", when="maybe"
            ).validate()
        with pytest.raises(FaultPlanError, match="worker_kill"):
            FaultRule(kind="worker_kill", mode="sim").validate()
        with pytest.raises(FaultPlanError, match="max_fires"):
            rank_crash(rank=0, max_fires=0).validate()

    def test_constructors_validate_clean(self):
        for rule in (
            rank_crash(stage="Alignment", superstep=1, rank=2),
            stall(rank=3, seconds=2.5),
            checkpoint_corrupt(stage="CountKmer", when="load", mode="bitflip"),
            cache_evict_race(stage="DetectOverlap"),
            worker_kill(after_stage="Alignment"),
            worker_kill(after_n_events=4, mode="sigkill"),
        ):
            rule.validate()

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            rules=(
                rank_crash(stage="Alignment", superstep=0, rank=2),
                stall(rank=1, seconds=3.0, stage="CountKmer"),
                checkpoint_corrupt(when="save", mode="truncate"),
                worker_kill(after_stage="TrReduction", mode="sim"),
            ),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan
        # serialized rules stay compact: fields at defaults are dropped
        first = json.loads(path.read_text())["rules"][0]
        assert "seconds" not in first and "after_stage" not in first

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(FaultPlanError, match="bad JSON"):
            FaultPlan.load(path)
        path.write_text(json.dumps({"rules": [{"kind": "nope"}]}))
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.load(path)
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(tmp_path / "missing.json")

    def test_random_is_deterministic_and_valid(self):
        for seed in range(25):
            plan = FaultPlan.random(seed)
            assert plan == FaultPlan.random(seed)
            plan.validate()
            assert 1 <= len(plan.rules) <= 4
            # the bounds the chaos suite relies on: crashes stay inside
            # the engine's retry budget, kills never SIGKILL the test
            assert sum(r.kind == "rank_crash" for r in plan.rules) <= 2
            for rule in plan.rules:
                if rule.kind == "worker_kill":
                    assert rule.mode == "sim"
        distinct = {FaultPlan.random(s).rules for s in range(25)}
        assert len(distinct) > 10  # seeds genuinely vary the plan


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_monotone_and_capped(self):
        flat = RetryPolicy(
            base_delay=0.5, factor=2.0, max_delay=8.0, jitter=0.0
        )
        delays = [flat.delay_for(a) for a in range(1, 8)]
        assert delays[:5] == [0.5, 1.0, 2.0, 4.0, 8.0]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert max(delays) == 8.0  # capped
        jittered = RetryPolicy(base_delay=0.5, factor=2.0, max_delay=8.0)
        for a in range(1, 8):
            assert flat.delay_for(a) <= jittered.delay_for(a) <= \
                flat.delay_for(a) * (1 + jittered.jitter)
        assert jittered.delay_for(0) == 0.0

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=1)
        c = RetryPolicy(seed=2)
        assert [a.delay_for(i) for i in range(1, 5)] == \
               [b.delay_for(i) for i in range(1, 5)]
        assert [a.delay_for(i) for i in range(1, 5)] != \
               [c.delay_for(i) for i in range(1, 5)]

    def test_failure_classes(self):
        policy = RetryPolicy()
        assert classify_failure(RankFailure("x")) == "rank_failure"
        assert classify_failure(CheckpointLoadError("x")) == "checkpoint"
        assert classify_failure(OSError("x")) == "io"
        assert classify_failure(ValueError("x")) is None
        assert policy.is_retryable(RankFailure("x"))
        assert not policy.is_retryable(ValueError("x"))
        only_io = RetryPolicy(retry_on=("io",))
        assert not only_io.is_retryable(RankFailure("x"))
        assert only_io.is_retryable(OSError("x"))

    def test_validation_and_round_trip(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(factor=0.5)
        with pytest.raises(FaultPlanError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(retry_on=("quantum",))
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=4)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


# ---------------------------------------------------------------------------
# superstep site: rank crashes and stalls
# ---------------------------------------------------------------------------


class TestSuperstepInjection:
    def test_rank_crash_recovered_bit_identical(self, reads, cfg, reference):
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="Alignment", superstep=0, rank=2),
        )))
        obs = CollectingObserver()
        result = Pipeline.default(observers=[obs]).run(
            reads, cfg, fault_injector=injector
        )
        assert result.contig_digest() == reference.contig_digest()
        assert result.recoveries == [
            {"stage": "Alignment", "rank": 2, "superstep": 0, "attempt": 1}
        ]
        assert result.faults_injected == 1
        assert injector.exhausted
        notes = [n for _, n in obs.notes]
        assert any(n.startswith("fault injected: rank_crash") for n in notes)
        assert any(n.startswith("recovery: rank 2") for n in notes)
        assert result.summary()["recoveries"] == result.recoveries

    def test_counts_stay_bit_identical_after_recovery(
        self, reads, cfg, reference
    ):
        """A recovered crash must not leak half-superstep accounting into
        the checkpointable counts -- the transactional guarantee."""
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="DetectOverlap", superstep=1, rank=0),
        )))
        result = Pipeline.default().run(reads, cfg, fault_injector=injector)
        drop = {"peak_memory_bytes"}
        assert {k: v for k, v in result.counts.items() if k not in drop} == \
               {k: v for k, v in reference.counts.items() if k not in drop}

    def test_stall_charges_straggler_time(self, reads, cfg, reference):
        injector = FaultInjector(FaultPlan(rules=(
            stall(rank=1, seconds=50.0, stage="Alignment", superstep=0),
        )))
        result = Pipeline.default().run(reads, cfg, fault_injector=injector)
        assert result.contig_digest() == reference.contig_digest()
        assert result.modeled_total > reference.modeled_total + 40.0
        assert injector.events[0]["kind"] == "stall"
        assert injector.events[0]["seconds"] == 50.0

    def test_crash_every_attempt_exhausts_retries(self, reads, cfg):
        import dataclasses

        limited = dataclasses.replace(cfg, stage_max_retries=2)
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="CountKmer", rank=0, max_fires=50),
        )))
        obs = CollectingObserver()
        with pytest.raises(RankFailure):
            Pipeline.default(observers=[obs]).run(
                reads, limited, fault_injector=injector
            )
        assert any(
            "not recovered" in n and "retries exhausted" in n
            for _, n in obs.notes
        )

    def test_injector_restored_after_run(self, reads, cfg):
        """The engine unhooks its injector and listener on the way out,
        even when the run dies."""
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="CountKmer", rank=0, max_fires=50),
        )))
        import dataclasses

        limited = dataclasses.replace(cfg, stage_max_retries=0)
        with pytest.raises(RankFailure):
            Pipeline.default().run(reads, limited, fault_injector=injector)
        assert injector.listeners == []


# ---------------------------------------------------------------------------
# checkpoint site: corruption and eviction races (satellite: corruption
# recovery is load -> CheckpointLoadError -> recompute, bit-identical)
# ---------------------------------------------------------------------------


class TestCheckpointFaults:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_on_save_recovered_next_run(
        self, tmp_path, reads, cfg, reference, mode
    ):
        injector = FaultInjector(FaultPlan(rules=(
            checkpoint_corrupt(stage="DetectOverlap", when="save", mode=mode),
        )))
        Pipeline.default().run(
            reads, cfg, checkpoint_dir=tmp_path, fault_injector=injector
        )
        assert injector.events[0]["action"] == f"corrupted:{mode}"
        obs = CollectingObserver()
        again = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_dir=tmp_path
        )
        # the rotten checkpoint is detected at load (checksum frame),
        # recomputed, and the digest still matches the fault-free run
        assert again.stages_run == ["DetectOverlap"]
        assert any("recomputing" in n for _, n in obs.notes)
        assert again.contig_digest() == reference.contig_digest()

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_on_load_recovered_same_run(
        self, tmp_path, reads, cfg, reference, mode
    ):
        Pipeline.default().run(reads, cfg, checkpoint_dir=tmp_path)
        injector = FaultInjector(FaultPlan(rules=(
            checkpoint_corrupt(stage="CountKmer", when="load", mode=mode),
        )))
        obs = CollectingObserver()
        result = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_dir=tmp_path, fault_injector=injector
        )
        assert result.stages_run == ["CountKmer"]
        assert result.faults_injected == 1
        assert result.contig_digest() == reference.contig_digest()
        notes = [n for _, n in obs.notes]
        assert any(n.startswith("fault injected: checkpoint_corrupt") for n in notes)
        assert any("recomputing" in n for n in notes)

    def test_evict_race_degrades_to_recompute(
        self, tmp_path, reads, cfg, reference
    ):
        Pipeline.default().run(reads, cfg, checkpoint_dir=tmp_path)
        injector = FaultInjector(FaultPlan(rules=(
            cache_evict_race(stage="TrReduction"),
        )))
        obs = CollectingObserver()
        result = Pipeline.default(observers=[obs]).run(
            reads, cfg, checkpoint_dir=tmp_path, fault_injector=injector
        )
        assert result.stages_run == ["TrReduction"]
        assert injector.events[0]["action"] == "evicted"
        assert result.contig_digest() == reference.contig_digest()
        assert any("recomputing" in n for _, n in obs.notes)


# ---------------------------------------------------------------------------
# worker site: simulated hard death, poison jobs, attempt ceilings
# ---------------------------------------------------------------------------


class TestWorkerDeath:
    def _service(self, root, clock, **kw):
        return JobService(root, lease_ttl=30.0, clock=clock.now, **kw)

    def test_sim_death_keeps_lease_until_adoption(self, tmp_path, reference):
        clock = FakeClock()
        svc = self._service(tmp_path, clock)
        job = svc.submit(SRC, CFG)
        plan = FaultPlan(rules=(
            worker_kill(after_stage="Alignment", mode="sim"),
        ))
        with pytest.raises(InjectedWorkerDeath):
            svc.worker(worker_id="w0", fault_plan=plan).run_once()
        record = svc.status(job)
        # exactly the wreckage a real SIGKILL leaves: job running, lease
        # live, upstream checkpoints pinned, fault event already durable
        assert record.state == "running" and record.attempts == 1
        assert len(svc.cache.pinned_files()) == 2
        assert svc.store.claim_next("vulture") is None
        events = [e["event"] for e in svc.events(job)]
        assert "fault_injected" in events

        clock.advance(31.0)
        svc.run_worker(worker_id="w1")
        record = svc.status(job)
        assert record.state == "done" and record.attempts == 2
        assert svc.result(job)["contig_digest"] == reference.contig_digest()
        assert svc.cache.pinned_files() == set()
        events = [e["event"] for e in svc.events(job)]
        assert "adopted" in events

    def test_poison_job_lands_in_failed(self, tmp_path):
        """Satellite fix: a job that fails every attempt must reach a
        terminal ``failed`` state, not retry silently forever."""
        clock = FakeClock()
        svc = self._service(
            tmp_path, clock,
            retry=RetryPolicy(max_attempts=3, base_delay=1.0),
        )
        job = svc.submit(SRC, {**CFG, "stage_max_retries": 0})
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="CountKmer", rank=0, max_fires=100),
        )))
        worker = svc.worker(worker_id="w0", fault_injector=injector)
        for _ in range(10):
            worker.drain()
            if svc.status(job).terminal:
                break
            clock.advance(60.0)
        record = svc.status(job)
        assert record.state == "failed"
        assert record.attempts == 3
        assert "RankFailure" in record.error
        kinds = [e["event"] for e in svc.events(job)]
        assert kinds.count("retry_scheduled") == 2
        assert kinds.count("failed") == 1
        # the triggering exception is in the event log, not just the record
        retries = [e for e in svc.events(job) if e["event"] == "retry_scheduled"]
        assert all("RankFailure" in e["error"] for e in retries)

    def test_backoff_hides_job_until_not_before(self, tmp_path):
        clock = FakeClock()
        svc = self._service(
            tmp_path, clock,
            retry=RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0),
        )
        job = svc.submit(SRC, {**CFG, "stage_max_retries": 0})
        injector = FaultInjector(FaultPlan(rules=(
            rank_crash(stage="CountKmer", rank=0),
        )))
        worker = svc.worker(worker_id="w0", fault_injector=injector)
        assert worker.run_once().state == "queued"
        record = svc.status(job)
        assert record.not_before == pytest.approx(clock.now() + 10.0)
        assert svc.store.claim_next("eager") is None  # backoff in force
        clock.advance(10.5)
        svc.run_worker(worker_id="w1")  # injector exhausted: clean run
        assert svc.status(job).state == "done"

    def test_permanent_error_fails_immediately(self, tmp_path):
        clock = FakeClock()
        svc = self._service(tmp_path, clock)
        job = svc.submit({**SRC, "length": 2500}, {**CFG, "k": 9999})
        svc.run_worker(worker_id="w0")
        record = svc.status(job)
        assert record.state == "failed" and record.attempts == 1
        assert not any(
            e["event"] == "retry_scheduled" for e in svc.events(job)
        )

    def test_orphan_over_ceiling_is_given_up(self, tmp_path):
        clock = FakeClock()
        svc = self._service(
            tmp_path, clock, retry=RetryPolicy(max_attempts=2)
        )
        job = svc.submit(SRC, CFG)
        # a dead worker's wreckage: running, expired lease, attempts burned
        record = svc.status(job)
        record.state = "running"
        record.attempts = 2
        record.error = "InjectedWorkerDeath: chaos"
        record.lease = {"worker": "ghost", "token": "t", "expires": clock.now() - 5}
        svc.store.save(record)
        assert svc.store.claim_next("w1") is None
        record = svc.status(job)
        assert record.state == "failed"
        assert "max attempts (2) exceeded" in record.error
        events = [e["event"] for e in svc.events(job)]
        assert "gave_up" in events


# ---------------------------------------------------------------------------
# event-log following (satellite: watch --follow)
# ---------------------------------------------------------------------------


class TestFollowEvents:
    def _store(self, tmp_path):
        store = JobStore(tmp_path, clock=lambda: 0.0)
        record = store.submit(JobSpec(source={"kind": "simulate"}))
        return store, record.job_id

    def test_follow_tolerates_torn_lines(self, tmp_path):
        store, job_id = self._store(tmp_path)
        path = store.events_path(job_id)
        line = json.dumps({"t": 1, "event": "stage_start", "stage": "CountKmer"}) + "\n"
        with open(path, "a") as fh:
            fh.write(line[:12])  # a writer killed mid-append
        state = {"sleeps": 0}

        def fake_sleep(_):
            # the writer completes the torn line and appends another
            state["sleeps"] += 1
            with open(path, "a") as fh:
                fh.write(line[12:])
                fh.write(json.dumps({"t": 2, "event": "done"}) + "\n")

        events = list(store.follow_events(
            job_id,
            should_stop=lambda: state["sleeps"] >= 1,
            sleep=fake_sleep,
        ))
        assert [e["event"] for e in events] == [
            "submitted", "stage_start", "done",
        ]

    def test_final_drain_never_misses_terminal_event(self, tmp_path):
        store, job_id = self._store(tmp_path)
        store.append_event(job_id, "done")

        def no_sleep(_):  # pragma: no cover - would hang the test
            raise AssertionError("follow slept although stop was requested")

        events = list(store.follow_events(
            job_id, should_stop=lambda: True, sleep=no_sleep
        ))
        assert [e["event"] for e in events] == ["submitted", "done"]

    def test_missing_log_waits_then_stops(self, tmp_path):
        store = JobStore(tmp_path, clock=lambda: 0.0)
        calls = {"n": 0}

        def tick(_):
            calls["n"] += 1

        events = list(store.follow_events(
            "jnope", should_stop=lambda: calls["n"] >= 2, sleep=tick
        ))
        assert events == [] and calls["n"] == 2


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


class TestFaultCli:
    def test_assemble_fault_plan_flag(self, tmp_path, capsys):
        from repro.cli.assemble import main

        plan = FaultPlan(rules=(
            rank_crash(stage="Alignment", superstep=0, rank=1),
        ))
        path = tmp_path / "plan.json"
        plan.dump(path)
        rc = main([
            "--preset", "c_elegans", "--scale", "100000",
            "--fault-plan", str(path),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "injected 1 fault(s), recovered 1 stage failure(s)" in captured.out

    def test_assemble_rejects_bad_plan(self, tmp_path, capsys):
        from repro.cli.assemble import main

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": [{"kind": "nope"}]}))
        rc = main([
            "--preset", "c_elegans", "--scale", "100000",
            "--fault-plan", str(path),
        ])
        assert rc == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_jobs_worker_fault_plan_and_retry_flags(self, tmp_path, capsys):
        import io

        from repro.cli.jobs import main

        root = tmp_path / "root"
        plan = FaultPlan(rules=(
            stall(rank=0, seconds=5.0, stage="CountKmer", superstep=0),
        ))
        plan_path = tmp_path / "plan.json"
        plan.dump(plan_path)
        out = io.StringIO()
        assert main([
            "submit", "--root", str(root), "--simulate", "2500",
            "--sim-seed", "51", "--read-length", "350", "--stride", "140",
            "-P", "4", "-k", "17",
        ], out=out) == 0
        job_id = out.getvalue().strip()
        out = io.StringIO()
        assert main([
            "worker", "--root", str(root),
            "--fault-plan", str(plan_path),
            "--max-attempts", "2", "--retry-base-delay", "0.1",
        ], out=out) == 0
        assert f"{job_id}: done" in out.getvalue()
        svc = JobService(root)
        notes = [
            e for e in svc.events(job_id)
            if e["event"] == "note" and "fault injected: stall" in e["note"]
        ]
        assert len(notes) == 1

    def test_jobs_watch_follow_streams_to_terminal(self, tmp_path):
        import io

        from repro.cli.jobs import main

        root = tmp_path / "root"
        out = io.StringIO()
        assert main([
            "submit", "--root", str(root), "--simulate", "2500",
            "--sim-seed", "51", "--read-length", "350", "--stride", "140",
            "-P", "4", "-k", "17",
        ], out=out) == 0
        job_id = out.getvalue().strip()
        assert main(["worker", "--root", str(root)], out=io.StringIO()) == 0
        out = io.StringIO()
        # terminal job: --follow drains the whole log and exits 0
        assert main([
            "watch", "--root", str(root), job_id, "--follow",
            "--timeout", "10",
        ], out=out) == 0
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("submitted")
        assert "state: done" in lines[-1]
        assert any(line.startswith("done") for line in lines)
