"""Property tests: batched contig generation is bit-identical to scalar.

The contract of :mod:`repro.core.batch` is exact agreement with the scalar
walk of :mod:`repro.core.assembly` -- same contigs in the same order, same
``codes``/``read_path``/``orientations``/``circular``/``truncated`` fields,
same ``n_roots``/``n_cycles``/``n_singletons`` diagnostics.  These tests
enforce it on randomized degree-<=2 graph corpora (chains, cycles,
reverse-complement traversals, corrupted edges that truncate walks) plus
the realistic overlap fixtures of ``test_core_assembly``.
"""

import numpy as np
import pytest

import test_core_assembly as fixtures
from repro.core import InducedGraph, local_assembly
from repro.core.batch import component_labels, local_assembly_batch
from repro.errors import AssemblyError
from repro.seq import PackedReads, dna
from repro.sparse import LocalCoo
from repro.sparse.types import OVERLAP_DTYPE
from repro.strgraph.edgecodec import mirror_direction


def random_degree2_graph(
    rng,
    n_components=8,
    corrupt_prob=0.3,
    id_space=5000,
    min_len=15,
    max_len=60,
):
    """A random local graph of paths/cycles/singletons with edge payloads.

    Vertex numbering is a random permutation (components interleave), global
    ids are a random sorted subset of a larger id space, and each read gets
    a random traversal orientation -- so walks exercise reverse-complement
    pieces.  With probability ``corrupt_prob`` one directed edge per
    component gets a random ``dir``, producing walk-incompatible steps and
    hence truncated walks, stranded chain middles, and broken cycles.
    """
    comp_sizes = []
    for _ in range(n_components):
        kind = rng.random()
        if kind < 0.2:
            comp_sizes.append(("singleton", 1))
        elif kind < 0.5:
            comp_sizes.append(("cycle", int(rng.integers(3, 9))))
        else:
            comp_sizes.append(("path", int(rng.integers(2, 9))))
    n = sum(s for _, s in comp_sizes)
    perm = rng.permutation(n)
    gids = np.sort(rng.choice(id_space, size=n, replace=False))
    lengths = rng.integers(min_len, max_len + 1, size=n)
    reads = [dna.random_codes(rng, int(lengths[v])) for v in range(n)]
    orient = np.where(rng.random(n) < 0.5, 1, -1)

    rows, cols, vals = [], [], []

    def add_edge(u, v, direction):
        rec = np.zeros(1, dtype=OVERLAP_DTYPE)
        rec["dir"] = direction
        rec["pre"] = int(rng.integers(0, lengths[u]))
        rec["post"] = int(rng.integers(0, lengths[v]))
        rows.append(u)
        cols.append(v)
        vals.append(rec)

    base = 0
    for kind, size in comp_sizes:
        verts = perm[base : base + size]
        base += size
        if size == 1:
            continue
        pairs = [(verts[i], verts[i + 1]) for i in range(size - 1)]
        if kind == "cycle":
            pairs.append((verts[-1], verts[0]))
        directed = []
        for u, v in pairs:
            src_bit = 1 if orient[u] == 1 else 0
            dst_bit = 0 if orient[v] == 1 else 1
            d_uv = (src_bit << 1) | dst_bit
            directed.append((u, v, d_uv))
            directed.append((v, u, mirror_direction(d_uv)))
        if rng.random() < corrupt_prob:
            k = int(rng.integers(0, len(directed)))
            u, v, _ = directed[k]
            directed[k] = (u, v, int(rng.integers(0, 4)))
        for u, v, d in directed:
            add_edge(int(u), int(v), d)

    if vals:
        coo = LocalCoo(
            (n, n),
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.concatenate(vals),
        )
    else:
        coo = LocalCoo.empty((n, n), OVERLAP_DTYPE)
    graph = InducedGraph(coo=coo, global_ids=gids)
    packed = PackedReads.from_codes(reads, gids)
    return graph, packed


def assert_results_identical(batch, scalar):
    assert batch.n_roots == scalar.n_roots
    assert batch.n_cycles == scalar.n_cycles
    assert batch.n_singletons == scalar.n_singletons
    assert len(batch.contigs) == len(scalar.contigs)
    for i, (cb, cs) in enumerate(zip(batch.contigs, scalar.contigs)):
        assert cb.codes.dtype == cs.codes.dtype, f"contig {i}"
        assert np.array_equal(cb.codes, cs.codes), f"contig {i} codes"
        assert cb.read_path == cs.read_path, f"contig {i} read_path"
        assert cb.orientations == cs.orientations, f"contig {i} orientations"
        assert cb.circular == cs.circular, f"contig {i} circular"
        assert cb.truncated == cs.truncated, f"contig {i} truncated"


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("emit_cycles", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_corpus(self, seed, emit_cycles):
        rng = np.random.default_rng(300 + seed)
        graph, packed = random_degree2_graph(rng, n_components=10)
        scalar = local_assembly(
            graph, packed, emit_cycles=emit_cycles, engine="scalar"
        )
        batch = local_assembly(
            graph, packed, emit_cycles=emit_cycles, engine="batch"
        )
        assert_results_identical(batch, scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_heavily_corrupted(self, seed):
        """Every component broken somewhere: truncations, stranded middles."""
        rng = np.random.default_rng(500 + seed)
        graph, packed = random_degree2_graph(
            rng, n_components=12, corrupt_prob=1.0
        )
        scalar = local_assembly(graph, packed, emit_cycles=True, engine="scalar")
        batch = local_assembly(graph, packed, emit_cycles=True, engine="batch")
        assert_results_identical(batch, scalar)
        # the corpus must actually exercise the truncation path
        assert any(c.truncated for c in scalar.contigs) or scalar.n_cycles > 0

    @pytest.mark.parametrize("alternate", [False, True])
    def test_realistic_chain(self, alternate):
        """Real overlap payloads, forward and alternating-strand chains."""
        genome, graph, packed = fixtures.chain_fixture(
            n_reads=6, alternate=alternate, seed=2
        )
        scalar = local_assembly(graph, packed, engine="scalar")
        batch = local_assembly(graph, packed, engine="batch")
        assert_results_identical(batch, scalar)
        assert len(batch.contigs) == 1
        contig = batch.contigs[0]
        assert np.array_equal(contig.codes, genome) or np.array_equal(
            dna.revcomp(contig.codes), genome
        )

    def test_many_chains_one_graph(self):
        """Several independent chains in one local matrix, interleaved ids."""
        rng = np.random.default_rng(77)
        graph, packed = random_degree2_graph(
            rng, n_components=20, corrupt_prob=0.15
        )
        scalar = local_assembly(graph, packed, engine="scalar")
        batch = local_assembly(graph, packed, engine="batch")
        assert_results_identical(batch, scalar)
        assert len(scalar.contigs) >= 5

    def test_empty_graph(self):
        graph = InducedGraph(
            coo=LocalCoo.empty((0, 0), OVERLAP_DTYPE),
            global_ids=np.empty(0, dtype=np.int64),
        )
        result = local_assembly_batch(graph, PackedReads.empty())
        assert result.contigs == []
        assert result.n_roots == result.n_cycles == result.n_singletons == 0

    def test_branch_vertex_rejected(self):
        rows = np.array([0, 1, 0, 2, 0, 3])
        cols = np.array([1, 0, 2, 0, 3, 0])
        vals = np.zeros(6, dtype=OVERLAP_DTYPE)
        graph = InducedGraph(
            coo=LocalCoo((4, 4), rows, cols, vals),
            global_ids=np.arange(4),
        )
        packed = PackedReads.from_codes([dna.encode("ACGT")] * 4, np.arange(4))
        with pytest.raises(AssemblyError):
            local_assembly_batch(graph, packed)

    def test_asymmetric_pattern_rejected(self):
        """A directed edge without its mirror cannot be walked."""
        rows = np.array([0])
        cols = np.array([1])
        vals = np.zeros(1, dtype=OVERLAP_DTYPE)
        graph = InducedGraph(
            coo=LocalCoo((2, 2), rows, cols, vals),
            global_ids=np.arange(2),
        )
        packed = PackedReads.from_codes(
            [dna.encode("ACGT"), dna.encode("ACGT")], np.arange(2)
        )
        with pytest.raises(AssemblyError):
            local_assembly_batch(graph, packed)

    def test_unknown_engine_raises(self):
        genome, graph, packed = fixtures.chain_fixture(n_reads=3)
        with pytest.raises(AssemblyError):
            local_assembly(graph, packed, engine="simd")


class TestComponentLabels:
    def test_paths_and_cycles(self):
        rng = np.random.default_rng(9)
        graph, _packed = random_degree2_graph(rng, n_components=15)
        from repro.core.batch import build_edge_table
        from repro.sparse.dcsc import Dcsc

        csc = Dcsc.from_coo(graph.coo).to_csc()
        table = build_edge_table(csc, csc.degrees())
        labels = component_labels(table.nbr, graph.n_vertices)
        # labels constant along every edge, and equal to the component min
        cols = np.repeat(
            np.arange(graph.n_vertices, dtype=np.int64), np.diff(csc.jc)
        )
        assert np.array_equal(labels[csc.ir], labels[cols])
        for lab in np.unique(labels):
            members = np.flatnonzero(labels == lab)
            assert lab == members.min()

    def test_empty(self):
        labels = component_labels(np.empty((0, 2), dtype=np.int64), 0)
        assert labels.size == 0


class TestScalarVectorizedLookup:
    def test_scalar_path_uses_indices_of(self, monkeypatch):
        """The per-vertex ``index_of`` bisect is gone from the scalar walk."""
        genome, graph, packed = fixtures.chain_fixture(n_reads=5)
        calls = {"n": 0}
        orig = PackedReads.index_of

        def spy(self, gid):
            calls["n"] += 1
            return orig(self, gid)

        monkeypatch.setattr(PackedReads, "index_of", spy)
        result = local_assembly(graph, packed, engine="scalar")
        assert len(result.contigs) == 1
        assert calls["n"] == 0

    def test_indices_of_matches_index_of(self):
        genome, graph, packed = fixtures.chain_fixture(n_reads=5)
        gids = graph.global_ids
        vectorized = packed.indices_of(gids)
        scalar = [packed.index_of(int(g)) for g in gids]
        assert vectorized.tolist() == scalar
