"""Tests for the modeled working-set tracking (paper §7 memory reduction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MemoryMeter, SimWorld, cori_haswell, zero_cost


class TestMemoryMeter:
    def test_initial_peaks_zero(self):
        m = MemoryMeter(4)
        assert m.peak_overall() == 0.0
        assert m.peak_total() == 0.0
        assert m.stages() == []

    def test_high_water_mark_monotone(self):
        m = MemoryMeter(2)
        m.observe(0, 100.0)
        m.observe(0, 40.0)
        m.observe(0, 70.0)
        assert m.peak(0) == 100.0

    def test_per_rank_isolation(self):
        m = MemoryMeter(3)
        m.observe(0, 10.0)
        m.observe(2, 30.0)
        assert m.peak(0) == 10.0
        assert m.peak(1) == 0.0
        assert m.peak(2) == 30.0
        assert m.peak_overall() == 30.0
        assert m.peak_total() == 40.0

    def test_stage_attribution(self):
        m = MemoryMeter(2)
        m.observe(0, 50.0, stage="DetectOverlap")
        m.observe(1, 80.0, stage="DetectOverlap")
        m.observe(0, 20.0, stage="TrReduction")
        assert m.stage_peak("DetectOverlap") == 80.0
        assert m.stage_peak("TrReduction") == 20.0
        assert m.stage_peak("nonexistent") == 0.0
        assert m.by_stage() == {"DetectOverlap": 80.0, "TrReduction": 20.0}
        assert m.stages() == ["DetectOverlap", "TrReduction"]

    def test_observe_all(self):
        m = MemoryMeter(3)
        m.observe_all([1.0, 2.0, 3.0])
        assert m.peak_total() == 6.0

    def test_observe_all_length_check(self):
        m = MemoryMeter(3)
        with pytest.raises(ValueError):
            m.observe_all([1.0, 2.0])

    def test_bad_rank_rejected(self):
        m = MemoryMeter(2)
        with pytest.raises(IndexError):
            m.observe(2, 1.0)
        with pytest.raises(IndexError):
            m.observe(-1, 1.0)

    def test_negative_bytes_rejected(self):
        m = MemoryMeter(1)
        with pytest.raises(ValueError):
            m.observe(0, -1.0)

    def test_bad_nprocs_rejected(self):
        with pytest.raises(ValueError):
            MemoryMeter(0)

    def test_reset(self):
        m = MemoryMeter(2)
        m.observe(0, 100.0, stage="x")
        m.reset()
        assert m.peak_overall() == 0.0
        assert m.stages() == []

    @given(
        samples=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0, max_value=1e9, allow_nan=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_peak_is_max_of_samples(self, samples):
        m = MemoryMeter(4)
        best = np.zeros(4)
        for rank, nbytes in samples:
            m.observe(rank, nbytes)
            best[rank] = max(best[rank], nbytes)
        for r in range(4):
            assert m.peak(r) == best[r]
        assert m.peak_overall() == best.max()


class TestWorldIntegration:
    def test_world_has_meter(self):
        world = SimWorld(4, zero_cost())
        assert isinstance(world.memory, MemoryMeter)
        assert world.memory.nprocs == 4

    def test_observe_memory_uses_current_stage(self):
        world = SimWorld(2, zero_cost())
        with world.stage_scope("MyStage"):
            world.observe_memory(0, 123.0)
        assert world.memory.stage_peak("MyStage") == 123.0

    def test_observe_memory_applies_volume_scale(self):
        world = SimWorld(1, cori_haswell().scaled(1000.0))
        world.observe_memory(0, 10.0)
        assert world.memory.peak(0) == 10.0 * 1000.0
