"""Unit tests for the x-drop aligner (gapless and banded engines)."""

import numpy as np
import pytest

from repro.align import extend_banded, extend_gapless, xdrop_extend
from repro.errors import AlignmentError
from repro.seq import dna


def seeds_of(a, b, k):
    """Find one exact shared k-mer (testing helper)."""
    for i in range(len(a) - k + 1):
        window = a[i : i + k]
        for j in range(len(b) - k + 1):
            if np.array_equal(window, b[j : j + k]):
                return i, j
    raise AssertionError("no seed found")


class TestGapless:
    def test_perfect_overlap_extends_fully(self):
        genome = dna.encode("ACGTTGCAACGTGGCATTGCAGGATCCAGTA")
        a = genome[:20]
        b = genome[10:]
        res = extend_gapless(a, b, 10, 0, 5, x=10)
        assert res.a_begin == 10 and res.a_end == 20
        assert res.b_begin == 0 and res.b_end == 10
        assert res.score == 10

    def test_extends_left_and_right_of_seed(self):
        genome = dna.encode("ACGTTGCAACGTGGCATTGCAGGATCCAGTA")
        a = genome[:25]
        b = genome[5:]
        sa, sb = seeds_of(a, b, 7)
        res = extend_gapless(a, b, sa, sb, 7, x=10)
        assert res.a_begin == 5 and res.a_end == 25
        assert res.b_begin == 0 and res.b_end == 20

    def test_xdrop_stops_at_junk(self):
        rng = np.random.default_rng(0)
        common = dna.random_codes(rng, 30)
        junk_a = dna.random_codes(rng, 30)
        junk_b = dna.random_codes(rng, 30)
        a = np.concatenate([common, junk_a])
        b = np.concatenate([common, junk_b])
        res = extend_gapless(a, b, 0, 0, 10, x=5)
        # extension should stop near the junk boundary
        assert res.a_end <= 40
        assert res.a_end >= 28

    def test_tolerates_sparse_mismatches(self):
        rng = np.random.default_rng(1)
        common = dna.random_codes(rng, 100)
        b = common.copy()
        b[50] = (b[50] + 1) % 4  # one substitution
        res = extend_gapless(common, b, 0, 0, 10, x=10)
        assert res.a_end == 100
        assert res.score == 100 - 2  # one mismatch costs 2 vs all-match

    def test_score_includes_seed(self):
        a = dna.encode("ACGTACGT")
        res = extend_gapless(a, a.copy(), 0, 0, 8, x=5)
        assert res.score == 8

    def test_invalid_seed_rejected(self):
        a = dna.encode("ACGT")
        with pytest.raises(AlignmentError):
            extend_gapless(a, a, 3, 0, 4, x=5)

    def test_spans(self):
        a = dna.encode("ACGTACGTAC")
        res = extend_gapless(a, a.copy(), 2, 2, 4, x=5)
        assert res.a_span == res.a_end - res.a_begin
        assert res.b_span == res.b_end - res.b_begin


class TestBanded:
    def test_matches_gapless_without_indels(self):
        rng = np.random.default_rng(2)
        common = dna.random_codes(rng, 60)
        a, b = common.copy(), common.copy()
        g = extend_gapless(a, b, 20, 20, 10, x=10)
        d = extend_banded(a, b, 20, 20, 10, x=10)
        assert (g.a_begin, g.a_end, g.b_begin, g.b_end) == (
            d.a_begin, d.a_end, d.b_begin, d.b_end,
        )
        assert g.score == d.score

    def test_crosses_an_insertion(self):
        rng = np.random.default_rng(3)
        left = dna.random_codes(rng, 40)
        right = dna.random_codes(rng, 40)
        a = np.concatenate([left, right])
        b = np.concatenate([left, np.array([0], dtype=np.uint8), right])  # 1bp insert
        res = extend_banded(a, b, 0, 0, 10, x=15)
        # alignment must reach past the insertion into the right half
        assert res.a_end > 50 and res.b_end > 50

    def test_gapless_cannot_cross_insertion(self):
        rng = np.random.default_rng(3)
        left = dna.random_codes(rng, 40)
        right = dna.random_codes(rng, 40)
        a = np.concatenate([left, right])
        b = np.concatenate([left, np.array([0], dtype=np.uint8), right])
        res = extend_gapless(a, b, 0, 0, 10, x=15)
        assert res.a_end <= 55  # stuck around the frame shift

    def test_invalid_seed_rejected(self):
        a = dna.encode("ACGT")
        with pytest.raises(AlignmentError):
            extend_banded(a, a, 0, 2, 4, x=5)


class TestDispatch:
    def test_modes(self):
        a = dna.encode("ACGTACGTACGT")
        r1 = xdrop_extend(a, a.copy(), 0, 0, 4, 5, mode="diag")
        r2 = xdrop_extend(a, a.copy(), 0, 0, 4, 5, mode="dp")
        assert r1.a_end == r2.a_end == 12

    def test_unknown_mode(self):
        a = dna.encode("ACGT")
        with pytest.raises(AlignmentError):
            xdrop_extend(a, a, 0, 0, 4, 5, mode="magic")
