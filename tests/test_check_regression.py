"""The perf-regression gate must catch real slowdowns and skip noise.

``benchmarks/check_regression.py`` is a standalone script (it gates the
committed BENCH_*.json trajectories in CI), so it is loaded here by file
path rather than imported from the package.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


STAMP = {
    "platform": "Linux-6.1-x86_64",
    "machine": "x86_64",
    "python": "3.11.7",
    "cpu_count": 8,
    "executor": "serial",
}
OTHER_STAMP = {**STAMP, "cpu_count": 64}


def entry(date, results, machine=STAMP):
    e = {"date": date, "results": results}
    if machine is not None:
        e["machine"] = dict(machine)
    return e


def row(nprocs, per_sec, speedup=None):
    r = {"nprocs": nprocs, "elems": 1000, "serial_supersteps_per_sec": per_sec}
    if speedup is not None:
        r["speedup"] = speedup
    return r


def trajectory(*entries, bench="t"):
    return {"bench": bench, "history": list(entries)}


class TestRowMatching:
    def test_identity_excludes_metrics_and_ratios(self):
        a = row(4, 100.0, speedup=2.0)
        b = row(4, 75.0, speedup=9.0)
        assert gate.row_identity(a) == gate.row_identity(b)
        assert gate.row_identity(row(4, 100.0)) != gate.row_identity(row(8, 100.0))

    def test_throughput_metrics_only_per_sec(self):
        r = {"nprocs": 4, "x_per_sec": 10.0, "speedup": 3.0, "y_vs_serial": 1.1}
        assert gate.throughput_metrics(r) == {"x_per_sec": 10.0}

    def test_non_scalar_identity_values_ignored(self):
        r = {"nprocs": 4, "cfg": {"nested": 1}, "z_per_sec": 5.0}
        assert gate.row_identity(r) == (("nprocs", 4),)


class TestMachineMatching:
    def test_same_stamp_matches(self):
        assert gate.same_machine(STAMP, dict(STAMP))

    def test_different_cpu_count_does_not(self):
        assert not gate.same_machine(STAMP, OTHER_STAMP)

    def test_missing_stamp_does_not(self):
        assert not gate.same_machine(STAMP, None)
        assert not gate.same_machine(None, STAMP)

    def test_python_version_is_not_identity(self):
        # a patch-level interpreter bump should not re-seed the baseline
        assert gate.same_machine(STAMP, {**STAMP, "python": "3.11.9"})


class TestBaselineSelection:
    def test_picks_most_recent_same_machine(self):
        history = [
            entry("d1", [row(4, 50.0)]),
            entry("d2", [row(4, 60.0)], machine=OTHER_STAMP),
            entry("d3", [row(4, 70.0)]),
            entry("d4", [row(4, 80.0)]),
        ]
        base = gate.find_baseline(history, history[-1])
        assert base is history[2]

    def test_skips_unstamped_entries(self):
        history = [
            entry("d1", [row(4, 50.0)], machine=None),
            entry("d2", [row(4, 80.0)]),
        ]
        assert gate.find_baseline(history, history[-1]) is None

    def test_unstamped_latest_has_no_baseline(self):
        history = [
            entry("d1", [row(4, 50.0)]),
            entry("d2", [row(4, 80.0)], machine=None),
        ]
        assert gate.find_baseline(history, history[-1]) is None


class TestCompare:
    def test_synthetic_25pct_slowdown_fails(self):
        """The ISSUE acceptance case: a 25% drop must trip the 20% gate."""
        base = entry("d1", [row(4, 100.0), row(16, 400.0)])
        slow = entry("d2", [row(4, 75.0), row(16, 400.0)])
        problems = gate.compare_entries(base, slow, tolerance=0.2)
        assert len(problems) == 1
        assert "serial_supersteps_per_sec" in problems[0]
        assert "nprocs=4" in problems[0]

    def test_within_tolerance_passes(self):
        base = entry("d1", [row(4, 100.0)])
        ok = entry("d2", [row(4, 85.0)])
        assert gate.compare_entries(base, ok, tolerance=0.2) == []

    def test_wider_tolerance_absorbs_the_drop(self):
        base = entry("d1", [row(4, 100.0)])
        slow = entry("d2", [row(4, 75.0)])
        assert gate.compare_entries(base, slow, tolerance=0.3) == []

    def test_speedup_ratio_never_gates(self):
        base = entry("d1", [row(4, 100.0, speedup=8.0)])
        latest = entry("d2", [row(4, 100.0, speedup=1.0)])
        assert gate.compare_entries(base, latest, tolerance=0.2) == []

    def test_new_workload_rows_ignored(self):
        base = entry("d1", [row(4, 100.0)])
        latest = entry("d2", [row(4, 100.0), row(64, 10.0)])
        assert gate.compare_entries(base, latest, tolerance=0.2) == []

    def test_improvement_never_gates(self):
        base = entry("d1", [row(4, 100.0)])
        fast = entry("d2", [row(4, 500.0)])
        assert gate.compare_entries(base, fast, tolerance=0.2) == []


class TestTrajectory:
    def test_regression_reported(self):
        data = trajectory(
            entry("d1", [row(4, 100.0)]),
            entry("d2", [row(4, 70.0)]),
        )
        status, problems = gate.check_trajectory(data, tolerance=0.2)
        assert "REGRESSION" in status
        assert problems

    def test_no_baseline_skips(self):
        data = trajectory(entry("d1", [row(4, 100.0)]))
        status, problems = gate.check_trajectory(data, tolerance=0.2)
        assert "skipped" in status
        assert problems == []

    def test_cross_machine_entries_reseed_not_fail(self):
        data = trajectory(
            entry("d1", [row(4, 1000.0)], machine=OTHER_STAMP),
            entry("d2", [row(4, 100.0)]),
        )
        status, problems = gate.check_trajectory(data, tolerance=0.2)
        assert "skipped" in status
        assert problems == []


class TestCli:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return path

    def test_exit_1_on_regression(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "BENCH_x.json",
            trajectory(entry("d1", [row(4, 100.0)]), entry("d2", [row(4, 75.0)])),
        )
        assert gate.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "-25%" in out

    def test_exit_0_when_clean(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "BENCH_x.json",
            trajectory(entry("d1", [row(4, 100.0)]), entry("d2", [row(4, 101.0)])),
        )
        assert gate.main([str(path)]) == 0
        assert "ok vs d1 baseline" in capsys.readouterr().out

    def test_exit_0_without_baseline(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "BENCH_x.json", trajectory(entry("d1", [row(4, 100.0)])),
        )
        assert gate.main([str(path)]) == 0

    def test_tolerance_flag(self, tmp_path):
        path = self._write(
            tmp_path, "BENCH_x.json",
            trajectory(entry("d1", [row(4, 100.0)]), entry("d2", [row(4, 75.0)])),
        )
        assert gate.main(["--tolerance", "0.3", str(path)]) == 0

    def test_bad_tolerance_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            gate.main(["--tolerance", "1.5"])

    def test_unreadable_file_fails(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        assert gate.main([str(bad)]) == 1

    def test_gates_committed_trajectories(self, capsys):
        """The real BENCH files must always be in a passing state."""
        assert gate.main([]) == 0
