"""Unit tests for the shared-memory baseline assemblers."""

import numpy as np
import pytest

from repro.baselines import (
    assemble_greedy_bog,
    assemble_serial_olc,
    find_overlaps,
    walk_contigs,
)
from repro.baselines.walker import SerialGraph
from repro.quality import evaluate_assembly
from repro.seq import GenomeSpec, dna, make_genome, sample_reads, tile_reads


@pytest.fixture(scope="module")
def dataset():
    genome = make_genome(GenomeSpec(length=3000, seed=71))
    rs = tile_reads(genome, 350, 140, "alternate")
    return genome, list(rs.reads)


class TestFindOverlaps:
    def test_adjacent_reads_found(self, dataset):
        genome, reads = dataset
        overlaps, contained = find_overlaps(reads, k=15, end_margin=5)
        pairs = {(o.a, o.b) for o in overlaps}
        for i in range(len(reads) - 1):
            assert (i, i + 1) in pairs

    def test_contained_reads_detected(self):
        genome = make_genome(GenomeSpec(length=900, seed=72))
        reads = [genome[:500].copy(), genome[100:300].copy(), genome[400:900].copy()]
        overlaps, contained = find_overlaps(reads, k=15, end_margin=5)
        assert 1 in contained
        assert all(1 not in (o.a, o.b) for o in overlaps)

    def test_min_shared_filter(self, dataset):
        genome, reads = dataset
        loose, _ = find_overlaps(reads, k=15, min_shared=1, end_margin=5)
        strict, _ = find_overlaps(reads, k=15, min_shared=1000, end_margin=5)
        assert len(strict) < len(loose)


class TestSerialGraph:
    def test_mask_branches(self):
        from repro.align.classify import EdgeFields

        g = SerialGraph()
        f = EdgeFields(direction=2, suffix=1, pre=0, post=0)
        for v in (1, 2, 3):
            g.add_edge(0, v, f)
            g.add_edge(v, 0, f)
        removed = g.mask_branches()
        assert removed == 1
        assert g.degree(1) == 0


class TestSerialOlc:
    def test_reconstructs_tiled_genome(self, dataset):
        genome, reads = dataset
        result = assemble_serial_olc(reads, k=15, end_margin=5)
        assert len(result.contigs) == 1
        contig = result.contigs[0]
        ok = np.array_equal(contig, genome) or np.array_equal(
            dna.revcomp(contig), genome
        )
        assert ok
        assert result.wall_seconds > 0
        assert set(result.stage_seconds) == {"overlap", "reduction", "contig"}

    def test_quality_on_sampled_reads(self):
        genome = make_genome(GenomeSpec(length=4000, seed=73))
        rs = sample_reads(genome, depth=14, mean_length=400, rng=3, error_rate=0.0)
        result = assemble_serial_olc(list(rs.reads), k=21, end_margin=5)
        report = evaluate_assembly(result.contigs, genome, k=21)
        assert report.completeness > 0.9
        assert report.misassemblies == 0


class TestGreedyBog:
    def test_reconstructs_tiled_genome(self, dataset):
        genome, reads = dataset
        result = assemble_greedy_bog(reads, k=15, end_margin=5)
        assert len(result.contigs) >= 1
        report = evaluate_assembly(result.contigs, genome, k=15)
        assert report.completeness > 0.95
        assert report.misassemblies == 0

    def test_mutual_best_filters_edges(self, dataset):
        genome, reads = dataset
        result = assemble_greedy_bog(reads, k=15, end_margin=5)
        assert result.n_best_edges <= result.n_overlaps

    def test_agrees_with_serial_olc_on_clean_chain(self, dataset):
        genome, reads = dataset
        a = assemble_serial_olc(reads, k=15, end_margin=5)
        b = assemble_greedy_bog(reads, k=15, end_margin=5)
        qa = evaluate_assembly(a.contigs, genome, k=15)
        qb = evaluate_assembly(b.contigs, genome, k=15)
        assert abs(qa.completeness - qb.completeness) < 0.05
