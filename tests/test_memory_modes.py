"""Tests for the low-memory SpGEMM accumulation ("stream" merge mode) and
its pipeline plumbing (paper §7: assemble large genomes at low concurrency).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DistributionError, PipelineError
from repro.mpi import ProcGrid, SimWorld, zero_cost
from repro.pipeline import PipelineConfig, run_pipeline
from repro.seq import dna, tile_reads
from repro.sparse import DistSparseMatrix
from repro.sparse.semiring import arithmetic_semiring


def random_dist(grid, shape, density, seed, rng_shift=0):
    rng = np.random.default_rng(seed + rng_shift)
    n, m = shape
    nnz = max(int(n * m * density), 1)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, m, size=nnz)
    vals = rng.integers(1, 5, size=nnz).astype(np.int64)
    # dedup coordinates to keep scipy comparison simple
    keys = rows * m + cols
    _, first = np.unique(keys, return_index=True)
    rows, cols, vals = rows[first], cols[first], vals[first]
    M = DistSparseMatrix.from_global_coo(grid, shape, rows, cols, vals)
    S = sp.coo_matrix((vals, (rows, cols)), shape=shape).tocsr()
    return M, S


class TestStreamMergeCorrectness:
    @pytest.mark.parametrize("nprocs", [1, 4, 9, 16])
    def test_stream_equals_bulk_equals_scipy(self, nprocs):
        world = SimWorld(nprocs, zero_cost())
        grid = ProcGrid(world)
        A, As = random_dist(grid, (40, 30), 0.15, seed=nprocs)
        B, Bs = random_dist(grid, (30, 35), 0.15, seed=nprocs, rng_shift=77)
        want = (As @ Bs).tocoo()

        for mode in ("bulk", "stream"):
            C = A.spgemm(B, arithmetic_semiring(), merge_mode=mode)
            r, c, v = C.to_global_coo()
            got = sp.coo_matrix((v, (r, c)), shape=(40, 35))
            assert (got != want).nnz == 0, mode

    def test_unknown_merge_mode_rejected(self):
        world = SimWorld(1, zero_cost())
        grid = ProcGrid(world)
        A, _ = random_dist(grid, (5, 5), 0.5, seed=1)
        with pytest.raises(DistributionError):
            A.spgemm(A, arithmetic_semiring(), merge_mode="banana")

    def test_empty_operands(self):
        world = SimWorld(4, zero_cost())
        grid = ProcGrid(world)
        A = DistSparseMatrix.empty(grid, (10, 10), np.dtype(np.int64))
        for mode in ("bulk", "stream"):
            C = A.spgemm(A, arithmetic_semiring(), merge_mode=mode)
            assert C.nnz() == 0


class TestMemoryObservation:
    def test_spgemm_records_memory(self):
        world = SimWorld(4, zero_cost())
        grid = ProcGrid(world)
        A, _ = random_dist(grid, (60, 60), 0.2, seed=5)
        with world.stage_scope("Mult"):
            A.spgemm(A, arithmetic_semiring())
        assert world.memory.stage_peak("Mult") > 0

    def test_stream_peak_not_larger_than_bulk(self):
        """The streamed accumulator can never hold more than the bulk
        partial list at the same point of the algorithm."""
        peaks = {}
        for mode in ("bulk", "stream"):
            world = SimWorld(16, zero_cost())
            grid = ProcGrid(world)
            # duplicate-heavy product: dense-ish square
            A, _ = random_dist(grid, (80, 80), 0.3, seed=9)
            A.spgemm(A, arithmetic_semiring(), merge_mode=mode)
            peaks[mode] = world.memory.peak_overall()
        assert peaks["stream"] <= peaks["bulk"]


class TestPipelinePlumbing:
    @pytest.fixture(scope="class")
    def readset(self):
        rng = np.random.default_rng(11)
        genome = dna.random_codes(rng, 3000)
        return tile_reads(genome, 200, 80)

    def test_memory_mode_low_same_contigs(self, readset):
        fast = run_pipeline(
            readset, PipelineConfig(nprocs=4, k=21, memory_mode="fast")
        )
        low = run_pipeline(
            readset, PipelineConfig(nprocs=4, k=21, memory_mode="low")
        )
        a = sorted(c.sequence() for c in fast.contigs.contigs)
        b = sorted(c.sequence() for c in low.contigs.contigs)
        assert a == b

    def test_peak_memory_reported(self, readset):
        res = run_pipeline(readset, PipelineConfig(nprocs=4, k=21))
        assert res.peak_memory_bytes > 0
        assert res.counts["peak_memory_bytes"] == res.peak_memory_bytes

    def test_low_mode_never_larger_peak(self, readset):
        fast = run_pipeline(
            readset, PipelineConfig(nprocs=9, k=21, memory_mode="fast")
        )
        low = run_pipeline(
            readset, PipelineConfig(nprocs=9, k=21, memory_mode="low")
        )
        assert low.peak_memory_bytes <= fast.peak_memory_bytes

    def test_merge_mode_property(self):
        assert PipelineConfig(memory_mode="fast").merge_mode == "bulk"
        assert PipelineConfig(memory_mode="low").merge_mode == "stream"

    def test_invalid_memory_mode_rejected(self):
        cfg = PipelineConfig(nprocs=4, memory_mode="medium")
        with pytest.raises(PipelineError):
            cfg.validate()


class TestCloudPreset:
    def test_preset_registered(self):
        from repro.mpi import MACHINE_PRESETS, aws_hpc

        assert "aws-hpc" in MACHINE_PRESETS
        m = aws_hpc()
        assert m.name == "aws-hpc"

    def test_cloud_latency_regime(self):
        """The cloud preset keeps Cori-class compute and bandwidth but
        ~10x the small-message latency (the measured EFA-vs-Aries gap)."""
        from repro.mpi import aws_hpc, cori_haswell

        cloud, cori = aws_hpc(), cori_haswell()
        assert cloud.gamma == cori.gamma
        assert cloud.alpha >= 5 * cori.alpha
        assert cloud.beta <= 2 * cori.beta

    def test_latency_bound_collective_slower_on_cloud(self):
        from repro.mpi import aws_hpc, cori_haswell

        cloud, cori = aws_hpc(), cori_haswell()
        # small payload, many ranks: latency dominates
        assert cloud.collective_time("alltoallv", 64, 1024, 64) > (
            cori.collective_time("alltoallv", 64, 1024, 64)
        )

    def test_bandwidth_bound_comparable(self):
        from repro.mpi import aws_hpc, cori_haswell

        cloud, cori = aws_hpc(), cori_haswell()
        big = 1 << 30
        t_cloud = cloud.collective_time("allgather", 4, big, big // 4)
        t_cori = cori.collective_time("allgather", 4, big, big // 4)
        assert t_cloud < 2 * t_cori

    def test_pipeline_runs_on_cloud_preset(self):
        rng = np.random.default_rng(13)
        genome = dna.random_codes(rng, 2000)
        rs = tile_reads(genome, 200, 80)
        res = run_pipeline(rs, PipelineConfig(nprocs=4, k=21, machine="aws-hpc"))
        assert res.contigs.count >= 1
        assert res.modeled_total > 0
