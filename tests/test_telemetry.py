"""The telemetry subsystem: span trees, the metrics registry, exporters.

The load-bearing property is **backend bit-identity**: the modeled span
tree (and therefore :meth:`Tracer.digest`) must agree exactly across the
serial, thread, process and mpi executor backends, standalone and through
the full pipeline.  Wall-clock readings ride along but never enter the
digest.
"""

import json

import numpy as np
import pytest

from repro import Pipeline, PipelineConfig
from repro.mpi import SimWorld, cori_haswell
from repro.seq import GenomeSpec, make_genome, tile_reads
from repro.telemetry import (
    MetricsRegistry,
    Span,
    TelemetryError,
    Tracer,
    get_registry,
    iter_jsonl_records,
    summary_table,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_jsonl,
)

BACKENDS = ("serial", "thread", "process", "mpi")


def step(ctx, arr):
    """A traced rank step: two named kernels plus an unnamed charge."""
    with ctx.span("sort"):
        ctx.charge_compute(arr.size * 2)
    with ctx.span("join"):
        ctx.charge_compute(arr.size)
    ctx.charge_compute(arr.size // 2)
    return int(arr.sum())


def traced_world(backend, nprocs=8, elems=64):
    rng = np.random.default_rng(9)
    payloads = [rng.integers(0, 100, size=elems) for _ in range(nprocs)]
    world = SimWorld(nprocs, cori_haswell(), executor=backend)
    tracer = Tracer().attach(world)
    tracer.begin_run(nprocs=nprocs)
    tracer.begin_stage("StageA")
    with world.stage_scope("StageA"):
        results = world.map_ranks(step, payloads)
        world.comm.allreduce([np.int64(r) for r in results], np.add)
    tracer.end_stage()
    tracer.begin_stage("StageB")
    with world.stage_scope("StageB"):
        world.map_ranks(step, payloads)
    tracer.end_stage()
    tracer.end_run()
    tracer.detach()
    return world, tracer, results


class TestSpan:
    def test_duration_and_walk(self):
        child = Span("k", "kernel", 1.0, 2.0, rank=0)
        parent = Span("s", "stage", 0.0, 3.0, children=[child])
        assert child.duration == 1.0
        assert [s.name for s in parent.walk()] == ["s", "k"]

    def test_wall_excluded_unless_asked(self):
        span = Span("s", "stage", 0.0, 1.0, wall=9.9)
        assert "wall" not in span.to_dict()
        assert span.to_dict(include_wall=True)["wall"] == 9.9


class TestTracerLifecycle:
    def test_attach_sets_and_detach_restores(self):
        world = SimWorld(4)
        tracer = Tracer().attach(world)
        assert world.tracer is tracer
        assert tracer.executor == "serial"
        tracer.detach()
        assert world.tracer is None

    def test_nprocs_mismatch_rejected(self):
        with pytest.raises(TelemetryError, match="cannot attach"):
            Tracer(nprocs=8).attach(SimWorld(4))

    def test_double_begin_run_rejected(self):
        tracer = Tracer(nprocs=2)
        tracer.begin_run()
        with pytest.raises(TelemetryError, match="already holds a run"):
            tracer.begin_run()

    def test_unbalanced_end_stage_rejected(self):
        tracer = Tracer(nprocs=2)
        tracer.begin_run()
        with pytest.raises(TelemetryError, match="without a matching"):
            tracer.end_stage()

    def test_unattached_tracer_rejects_hooks(self):
        with pytest.raises(TelemetryError, match="not attached"):
            Tracer().superstep("S", [])

    def test_empty_tracer_has_no_root(self):
        with pytest.raises(TelemetryError, match="recorded nothing"):
            Tracer(nprocs=2).root

    def test_world_defaults_to_untraced(self):
        assert SimWorld(2).tracer is None


class TestTreeStructure:
    def test_superstep_lanes_and_kernels(self):
        _, tracer, _ = traced_world("serial", nprocs=4)
        cats = {}
        for span in tracer.spans():
            cats.setdefault(span.cat, []).append(span)
        assert len(cats["stage"]) == 2
        assert len(cats["superstep"]) == 2
        assert len(cats["rank"]) == 8  # 4 ranks x 2 supersteps
        assert len(cats["kernel"]) == 16  # sort + join per lane
        assert len(cats["collective"]) == 1
        for lane in cats["rank"]:
            names = [k.name for k in lane.children]
            assert names == ["sort", "join"]
            # kernels tile the lane prefix end to end
            assert lane.children[0].t0 == lane.t0
            assert lane.children[1].t0 == lane.children[0].t1
            # the unnamed trailing charge widens the lane past the kernels
            assert lane.t1 > lane.children[1].t1

    def test_collective_synchronizes_participants(self):
        _, tracer, _ = traced_world("serial", nprocs=4)
        coll = next(s for s in tracer.spans() if s.cat == "collective")
        supersteps = [s for s in tracer.spans() if s.cat == "superstep"]
        # the collective starts at its participants' barrier: the end of
        # the slowest lane of the first superstep
        assert coll.t0 == supersteps[0].t1
        assert coll.duration > 0
        assert coll.attrs["ranks"] == [0, 1, 2, 3]
        assert coll.attrs["total_bytes"] > 0
        # the next superstep cannot start before the collective ends
        assert supersteps[1].t0 >= coll.t1

    def test_stall_charges_one_rank(self):
        tracer = Tracer(nprocs=4)
        tracer.begin_run()
        tracer.stall("S", 2, 0.5)
        tracer.end_run()
        stall = next(s for s in tracer.spans() if s.cat == "stall")
        assert stall.rank == 2
        assert stall.duration == 0.5
        assert tracer.root.duration == 0.5

    def test_direct_compute_advances_clock_without_spans(self):
        world = SimWorld(2, cori_haswell())
        tracer = Tracer().attach(world)
        tracer.begin_run()
        with world.stage_scope("S"):
            world.charge_compute(0, 1000)
            world.charge_compute_all(np.array([500, 2000]))
        tracer.end_run()
        tracer.detach()
        assert tracer.root.children == []
        assert tracer.root.duration > 0

    def test_skip_stage_is_zero_width(self):
        tracer = Tracer(nprocs=2)
        tracer.begin_run()
        tracer.skip_stage("ExtractContig", "until")
        tracer.end_run()
        (span,) = tracer.root.children
        assert span.duration == 0.0
        assert span.attrs == {"skipped": "until"}

    def test_fail_stage_stamps_error_and_attempt(self):
        tracer = Tracer(nprocs=2)
        tracer.begin_run()
        tracer.begin_stage("Alignment")
        tracer.fail_stage("RankFailure", attempt=1)
        tracer.end_run()
        (span,) = tracer.root.children
        assert span.attrs["failed"] == "RankFailure"
        assert span.attrs["attempt"] == 1


class TestBackendBitIdentity:
    def test_digest_identical_across_backends(self):
        digests = {b: traced_world(b)[1].digest() for b in BACKENDS}
        assert len(set(digests.values())) == 1, digests

    def test_digest_identical_at_p64(self):
        digests = {}
        for backend in BACKENDS:
            _, tracer, _ = traced_world(backend, nprocs=64, elems=16)
            digests[backend] = tracer.digest()
        assert len(set(digests.values())) == 1, digests

    def test_wall_times_do_not_enter_digest(self):
        _, a, _ = traced_world("serial")
        _, b, _ = traced_world("serial")
        for span in b.spans():
            span.wall = 123.456
        assert a.digest() == b.digest()

    def test_executor_name_outside_digest(self):
        _, a, _ = traced_world("serial")
        _, b, _ = traced_world("process")
        assert a.executor == "serial"
        assert b.executor == "process"
        assert a.digest() == b.digest()

    def test_different_workload_different_digest(self):
        _, a, _ = traced_world("serial", elems=64)
        _, b, _ = traced_world("serial", elems=65)
        assert a.digest() != b.digest()


@pytest.fixture(scope="module")
def tiny_reads():
    genome = make_genome(GenomeSpec(length=2500, seed=51))
    return tile_reads(genome, 350, 140)


class TestPipelineIntegration:
    def _run(self, reads, executor, **kwargs):
        cfg = PipelineConfig(
            nprocs=4, k=17, reliable_lo=1, end_margin=5, executor=executor
        )
        tracer = Tracer()
        result = Pipeline.default().run(reads, cfg, tracer=tracer, **kwargs)
        return result, tracer

    def test_trace_rides_on_result(self, tiny_reads):
        result, tracer = self._run(tiny_reads, "serial")
        assert result.trace is tracer
        stage_names = [
            s.name for s in tracer.root.children if s.cat == "stage"
        ]
        assert stage_names[0] == "CountKmer"
        assert "ExtractContig" in stage_names
        assert tracer.root.wall is not None
        assert tracer.root.duration > 0

    def test_pipeline_digest_serial_equals_process(self, tiny_reads):
        _, serial = self._run(tiny_reads, "serial")
        _, process = self._run(tiny_reads, "process")
        assert serial.digest() == process.digest()

    def test_until_records_skipped_stages(self, tiny_reads):
        _, tracer = self._run(tiny_reads, "serial", until="TrReduction")
        skipped = {
            s.name: s.attrs["skipped"]
            for s in tracer.root.children
            if "skipped" in s.attrs
        }
        assert skipped.get("ExtractContig") == "until"

    def test_untraced_run_unaffected(self, tiny_reads):
        cfg = PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5)
        result = Pipeline.default().run(tiny_reads, cfg)
        assert result.trace is None


class TestMetricsPrimitives:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert reg.value("x") == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_set_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.add(-2)
        assert reg.value("depth") == 3.0

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 99.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((0.05 + 0.5 + 0.7 + 99.0) / 4)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError, match=">= 1 bucket"):
            MetricsRegistry().histogram("empty", buckets=())

    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_untouched_value_is_zero(self):
        assert MetricsRegistry().value("nothing") == 0.0


class TestMetricsRegistry:
    def test_snapshot_merge_roundtrip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs.done").inc(3)
        a.gauge("cache.bytes").set(100)
        a.histogram("wall", buckets=(1.0,)).observe(0.5)
        b.counter("jobs.done").inc(4)
        b.gauge("cache.bytes").set(250)
        b.histogram("wall", buckets=(1.0,)).observe(2.0)
        b.merge(a.snapshot())
        assert b.value("jobs.done") == 7
        assert b.value("cache.bytes") == 100  # gauge: last write wins
        hist = b.histogram("wall")
        assert hist.count == 2
        assert hist.counts == [1, 1]

    def test_render_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("comm.ops").inc(12)
        reg.histogram("wall").observe(0.2)
        text = reg.render()
        assert "comm.ops" in text
        assert "mean=0.2000s" in text
        reg.reset()
        assert reg.render() == "(no metrics)"

    def test_runtime_publishes_superstep_and_comm_metrics(self):
        reg = get_registry()
        steps0 = reg.value("mpi.supersteps")
        ops0 = reg.value("comm.ops")
        bytes0 = reg.value("comm.bytes")
        world = SimWorld(4, cori_haswell())
        with world.stage_scope("S"):
            world.map_ranks(lambda ctx: int(ctx))
            world.comm.allgather([np.zeros(8) for _ in range(4)])
        assert reg.value("mpi.supersteps") == steps0 + 1
        assert reg.value("comm.ops") == ops0 + 1
        assert reg.value("comm.bytes") > bytes0


class TestExport:
    @pytest.fixture(scope="class")
    def tracer(self):
        return traced_world("process", nprocs=4)[1]

    def test_chrome_trace_validates(self, tracer):
        trace = to_chrome_trace(tracer, include_wall=True)
        assert validate_trace(trace) == []

    def test_chrome_trace_lanes(self, tracer):
        trace = to_chrome_trace(tracer)
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names == {"pipeline", "rank 0", "rank 1", "rank 2", "rank 3"}
        # the collective is mirrored onto every participant lane
        colls = [
            e for e in trace["traceEvents"] if e.get("cat") == "collective"
        ]
        assert sorted(e["tid"] for e in colls) == [1, 2, 3, 4]
        # the backend is surfaced in the process label, outside the digest
        label = next(
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        )
        assert "(process)" in label

    def test_chrome_trace_roundtrips_files(self, tracer, tmp_path):
        path = tmp_path / "t.json"
        n = write_chrome_trace(tracer, path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == n
        assert validate_trace(loaded) == []

    def test_jsonl_parent_links(self, tracer, tmp_path):
        path = tmp_path / "t.jsonl"
        n = write_jsonl(tracer, path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == n
        by_id = {r["id"]: r for r in records}
        roots = [r for r in records if r["parent"] is None]
        assert len(roots) == 1 and roots[0]["cat"] == "run"
        for r in records:
            if r["parent"] is not None:
                parent = by_id[r["parent"]]
                assert parent["t0"] <= r["t0"] <= r["t1"] <= parent["t1"]

    def test_jsonl_matches_walk_order(self, tracer):
        names = [r["name"] for r in iter_jsonl_records(tracer)]
        assert names == [s.name for s in tracer.spans()]

    def test_summary_table_rolls_up_stages(self, tracer):
        text = summary_table(tracer)
        assert "StageA" in text and "StageB" in text
        assert "[process]" in text

    def test_summary_table_marks_skips(self):
        t = Tracer(nprocs=2)
        t.begin_run()
        t.skip_stage("ExtractContig", "until")
        t.end_run()
        assert "skipped (until)" in summary_table(t)

    @pytest.mark.parametrize(
        "obj, problem",
        [
            ({}, "traceEvents missing"),
            ({"traceEvents": []}, "empty"),
            ({"traceEvents": [{"ph": "B", "name": "x"}]}, "unsupported ph"),
            (
                {"traceEvents": [
                    {"ph": "X", "name": "x", "pid": 0, "tid": 0,
                     "ts": -1.0, "dur": 0.0}
                ]},
                "negative",
            ),
            (
                {"traceEvents": [
                    {"ph": "X", "name": "x", "pid": "zero", "tid": 0,
                     "ts": 0.0, "dur": 0.0}
                ]},
                "pid must be an int",
            ),
        ],
    )
    def test_validate_trace_catches(self, obj, problem):
        errors = validate_trace(obj)
        assert any(problem in e for e in errors), errors
