"""Unit tests for packed read storage and the distributed read store."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import DistReadStore, PackedReads, dna
from repro.seq.readstore import gather_pieces


class TestPackedReads:
    def test_from_strings_roundtrip(self):
        pr = PackedReads.from_strings(["ACGT", "TT", "GGGA"])
        assert pr.count == 3
        assert pr.string(0) == "ACGT"
        assert pr.string(1) == "TT"
        assert pr.string(2) == "GGGA"
        assert pr.total_bases == 10

    def test_codes_are_zero_copy_views(self):
        pr = PackedReads.from_strings(["ACGT", "TTT"])
        view = pr.codes(1)
        assert view.base is pr.buffer

    def test_subsequence_view(self):
        pr = PackedReads.from_strings(["ACGTACGT"])
        assert dna.decode(pr.subsequence(0, 2, 6)) == "GTAC"

    def test_lengths(self):
        pr = PackedReads.from_strings(["A", "ACG", ""])
        assert list(pr.lengths()) == [1, 3, 0]

    def test_index_of_bisects_ids(self):
        pr = PackedReads.from_codes(
            [dna.encode("AC"), dna.encode("GG")], ids=[10, 42]
        )
        assert pr.index_of(42) == 1
        with pytest.raises(SequenceError):
            pr.index_of(7)

    def test_indices_of_vectorized(self):
        pr = PackedReads.from_codes(
            [dna.encode("AC"), dna.encode("GG"), dna.encode("TT")],
            ids=[10, 42, 99],
        )
        assert list(pr.indices_of(np.array([99, 10, 42, 10]))) == [2, 0, 1, 0]
        assert pr.indices_of(np.empty(0, dtype=np.int64)).size == 0
        for missing in ([7], [43], [100], [42, 7]):
            with pytest.raises(SequenceError):
                pr.indices_of(np.array(missing))
        with pytest.raises(SequenceError):
            PackedReads.empty().indices_of(np.array([1]))

    def test_select_preserves_order(self):
        pr = PackedReads.from_strings(["AA", "CC", "GG"])
        sub = pr.select(np.array([2, 0]))
        assert sub.string(0) == "GG"
        assert sub.string(1) == "AA"
        assert list(sub.ids) == [2, 0]

    def test_select_empty_and_duplicates(self):
        pr = PackedReads.from_strings(["AA", "CCC", ""])
        assert pr.select(np.empty(0, dtype=np.int64)).count == 0
        dup = pr.select(np.array([1, 1, 2]))
        assert [dup.string(i) for i in range(3)] == ["CCC", "CCC", ""]

    def test_gather_pieces_forward_and_strided(self):
        buf = np.arange(10, dtype=np.uint8)
        codes, offsets = gather_pieces(
            buf,
            base=np.array([0, 9, 4]),
            lengths=np.array([3, 4, 0]),
            sign=np.array([1, -1, 1]),
        )
        assert offsets.tolist() == [0, 3, 7, 7]
        assert codes.tolist() == [0, 1, 2, 9, 8, 7, 6]
        empty_codes, empty_off = gather_pieces(
            buf, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert empty_codes.size == 0 and empty_off.tolist() == [0]

    def test_empty(self):
        pr = PackedReads.empty()
        assert pr.count == 0 and pr.total_bases == 0

    def test_iteration(self):
        pr = PackedReads.from_strings(["AC", "GT"])
        items = [(i, dna.decode(c)) for i, c in pr]
        assert items == [(0, "AC"), (1, "GT")]

    def test_validation(self):
        with pytest.raises(SequenceError):
            PackedReads(
                np.zeros(4, np.uint8), np.array([0, 2]), np.array([0, 1])
            )
        with pytest.raises(SequenceError):
            PackedReads(
                np.zeros(4, np.uint8), np.array([0, 2, 1]), np.array([0, 1])
            )


class TestDistReadStore:
    def _reads(self, n=23, seed=0):
        rng = np.random.default_rng(seed)
        return [dna.random_codes(rng, int(rng.integers(5, 30))) for _ in range(n)]

    def test_distribution_covers_all_reads(self, grid):
        reads = self._reads()
        store = DistReadStore.from_global(grid, reads)
        assert store.nreads == len(reads)
        total = sum(s.count for s in store.shards)
        assert total == len(reads)

    def test_shards_align_with_vec_blocks(self, grid):
        reads = self._reads()
        store = DistReadStore.from_global(grid, reads)
        for rank, shard in enumerate(store.shards):
            lo, hi = grid.vec_block(len(reads), rank)
            assert np.array_equal(shard.ids, np.arange(lo, hi))

    def test_codes_global_consistency(self, grid4):
        reads = self._reads()
        store = DistReadStore.from_global(grid4, reads)
        for i in (0, 10, 22):
            assert np.array_equal(store.codes_global(i), reads[i])

    def test_owner_of_matches_shards(self, grid):
        reads = self._reads()
        store = DistReadStore.from_global(grid, reads)
        for rank, shard in enumerate(store.shards):
            for rid in shard.ids:
                assert int(store.owner_of(int(rid))) == rank

    def test_fetch_delivers_requested_reads(self, grid):
        reads = self._reads()
        store = DistReadStore.from_global(grid, reads)
        rng = np.random.default_rng(1)
        requests = [
            rng.choice(len(reads), size=5, replace=False)
            for _ in range(grid.nprocs)
        ]
        fetched = store.fetch(requests)
        for req, pack in zip(requests, fetched):
            for rid in req:
                got = pack.codes(pack.index_of(int(rid)))
                assert np.array_equal(got, reads[rid])

    def test_fetch_dedupes_requests(self, grid4):
        reads = self._reads()
        store = DistReadStore.from_global(grid4, reads)
        fetched = store.fetch(
            [np.array([3, 3, 3])] + [np.empty(0, dtype=np.int64)] * 3
        )
        assert fetched[0].count == 1

    def test_lengths_and_total(self, grid4):
        reads = self._reads()
        store = DistReadStore.from_global(grid4, reads)
        assert store.total_bases() == sum(len(r) for r in reads)
        assert np.array_equal(
            store.lengths_global(), np.array([len(r) for r in reads])
        )
