"""Out-of-process executor contract: process pool, mpi emulator, shm.

The PR 4 invariant extended across address spaces: a superstep produces
bit-identical results, clocks, comm logs and memory accounting whether
its ranks run serially, on threads, in spawned worker processes, or
through the mpi4py emulator path.  These tests pin that contract at the
raw map_ranks level (P=64 with interleaved subcomm collectives and a
chaos leg), at the shared-memory transport level, and end-to-end through
the pipeline and the job-engine worker.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro import Pipeline, PipelineConfig
from repro.errors import CommunicatorError, RankFailure
from repro.faults import FaultInjector, FaultPlan, rank_crash
from repro.mpi import (
    EXECUTOR_BACKENDS,
    SimWorld,
    SharedBufferRegistry,
    cori_haswell,
    make_executor,
)
from repro.mpi.mpiexec import EmulatedComm, MPIExecutor
from repro.mpi.procexec import ProcessExecutor, _chunk_bounds
from repro.mpi.shm import SHM_THRESHOLD_DEFAULT, attach_array, shm_dumps, shm_loads
from repro.seq import GenomeSpec, make_genome, sample_reads
from repro.service import JobService

# ---------------------------------------------------------------------------
# module-level rank steps (out-of-process backends pickle these by
# reference; anything nested below is pickled by value by cloudpickle)
# ---------------------------------------------------------------------------


def _accounting_step(ctx, ops):
    ctx.charge_compute(ops)
    with ctx.stage_scope("Super/inner"):
        ctx.charge_compute(ops * 2, kind="alignment")
    ctx.observe_memory(float(1000 * (int(ctx) + 1)))
    return int(ctx)


def _sum_step(ctx, arr):
    ctx.charge_compute(arr.size)
    ctx.observe_memory(float(arr.nbytes))
    return int(arr.sum())


def _shared_panel_step(ctx, panel, scale):
    # every rank receives the SAME panel object (a broadcast): the
    # process backend must export its array once, not once per rank
    ctx.charge_compute(panel.size)
    return float(panel[int(ctx) % panel.size]) * scale


def _failing_step(ctx):
    ctx.charge_compute(1000)
    if int(ctx) == 2:
        raise RuntimeError("rank 2 exploded")
    return int(ctx)


def _world_access_step(ctx):
    return ctx.world.nprocs


def _return_unpicklable_step(ctx):
    return threading.Lock() if int(ctx) == 1 else int(ctx)


def _charged_world(backend, nprocs=4):
    w = SimWorld(nprocs, cori_haswell(), executor=backend)
    with w.stage_scope("Super"):
        w.map_ranks(_accounting_step, [100 * (r + 1) for r in range(nprocs)])
    return w


def _clock_state(w):
    return {
        s: [float(x) for x in w.clock.per_rank_seconds(s)]
        for s in w.clock.stages()
    }


def _assert_worlds_identical(a, b):
    assert a.clock.stages() == b.clock.stages()
    for stage in a.clock.stages():
        assert np.array_equal(
            a.clock.per_rank_seconds(stage), b.clock.per_rank_seconds(stage)
        )
    assert a.memory.by_stage() == b.memory.by_stage()
    assert len(a.log) == len(b.log)
    assert [e.op for e in a.log.events] == [e.op for e in b.log.events]
    assert a.log.total_bytes() == b.log.total_bytes()


# ---------------------------------------------------------------------------
# the shared-memory transport
# ---------------------------------------------------------------------------


class TestSharedBufferRegistry:
    def test_export_attach_roundtrip(self):
        reg = SharedBufferRegistry()
        try:
            arr = np.arange(50_000, dtype=np.int64)
            handle = reg.export(arr)
            view = attach_array(handle)
            assert np.array_equal(view, arr)
            assert not view.flags.writeable
            assert handle.nbytes == arr.nbytes
        finally:
            reg.close()

    def test_structured_dtype_roundtrip(self):
        dt = np.dtype([("src", "<i8"), ("dst", "<i8"), ("w", "<f4")])
        arr = np.zeros(10_000, dtype=dt)
        arr["src"] = np.arange(10_000)
        arr["w"] = 0.5
        reg = SharedBufferRegistry()
        try:
            view = attach_array(reg.export(arr))
            assert view.dtype == dt
            assert np.array_equal(view["src"], arr["src"])
            assert np.array_equal(view["w"], arr["w"])
        finally:
            reg.close()

    def test_same_array_exports_once(self):
        reg = SharedBufferRegistry()
        try:
            arr = np.ones(100_000)
            h1, h2 = reg.export(arr), reg.export(arr)
            assert h1 == h2
            assert reg.exported_arrays == 1
            assert reg.reused == 1
        finally:
            reg.close()

    def test_sweep_reclaims_idle_segments(self):
        reg = SharedBufferRegistry(keep_sweeps=2)
        try:
            reg.export(np.ones(1000))
            assert reg.live_segments == 1
            assert reg.sweep() == 0  # age 1: still fresh
            assert reg.sweep() == 0  # age 2: at the horizon
            assert reg.sweep() == 1  # age 3: reclaimed
            assert reg.live_segments == 0
        finally:
            reg.close()

    def test_touch_resets_idle_clock(self):
        reg = SharedBufferRegistry(keep_sweeps=2)
        try:
            arr = np.ones(1000)
            reg.export(arr)
            reg.sweep()
            reg.sweep()
            reg.export(arr)  # touched: survives the next sweeps
            assert reg.sweep() == 0
            assert reg.live_segments == 1
        finally:
            reg.close()

    def test_close_idempotent(self):
        reg = SharedBufferRegistry()
        reg.export(np.ones(1000))
        reg.close()
        reg.close()
        assert reg.live_segments == 0

    def test_bad_keep_sweeps(self):
        with pytest.raises(ValueError):
            SharedBufferRegistry(keep_sweeps=0)


class TestShmPickle:
    def test_small_arrays_travel_inline(self):
        reg = SharedBufferRegistry()
        try:
            obj = {"small": np.arange(16), "n": 3}
            blob = shm_dumps(obj, reg)
            assert reg.exported_arrays == 0
            out = shm_loads(blob)
            assert np.array_equal(out["small"], obj["small"])
        finally:
            reg.close()

    def test_large_arrays_divert_to_segments(self):
        reg = SharedBufferRegistry()
        try:
            big = np.arange(200_000, dtype=np.float64)
            blob = shm_dumps({"big": big, "tag": "x"}, reg)
            assert reg.exported_arrays == 1
            assert len(blob) < big.nbytes // 10  # handle, not payload
            out = shm_loads(blob)
            assert np.array_equal(out["big"], big)
            assert out["tag"] == "x"
        finally:
            reg.close()

    def test_threshold_is_configurable(self):
        reg = SharedBufferRegistry()
        try:
            arr = np.arange(64)  # 512 bytes
            shm_dumps(arr, reg, threshold=256)
            assert reg.exported_arrays == 1
        finally:
            reg.close()

    def test_no_registry_means_plain_cloudpickle(self):
        big = np.arange(200_000, dtype=np.float64)
        out = shm_loads(shm_dumps(big, None))
        assert np.array_equal(out, big)

    def test_views_and_object_arrays_stay_inline(self):
        reg = SharedBufferRegistry()
        try:
            big = np.arange(200_000, dtype=np.float64)
            strided = big[::2]  # not C-contiguous
            objs = np.array([None, "a"], dtype=object)
            out = shm_loads(shm_dumps((strided, objs), reg))
            assert reg.exported_arrays == 0
            assert np.array_equal(out[0], strided)
        finally:
            reg.close()


# ---------------------------------------------------------------------------
# ProcessExecutor semantics
# ---------------------------------------------------------------------------


class TestProcessExecutor:
    def test_results_in_rank_order(self):
        w = SimWorld(6, executor="process")
        payloads = [np.full(8, r, dtype=np.int64) for r in range(6)]
        assert w.map_ranks(_sum_step, payloads) == [8 * r for r in range(6)]

    def test_accounting_identical_to_serial(self):
        serial = _charged_world("serial")
        proc = _charged_world("process")
        _assert_worlds_identical(serial, proc)
        assert _clock_state(serial) == _clock_state(proc)

    def test_transactional_failure_charges_nothing(self):
        w = SimWorld(4, cori_haswell(), executor="process")
        with pytest.raises(RuntimeError, match="rank 2"):
            w.map_ranks(_failing_step)
        assert w.clock.stages() == []

    def test_unpicklable_step_raises_communicator_error(self):
        w = SimWorld(4, executor="process")
        lock = threading.Lock()

        def step(ctx):  # closure over a lock: cannot cross processes
            return lock.locked()

        with pytest.raises(CommunicatorError, match="not picklable"):
            w.map_ranks(step)

    def test_unpicklable_arg_names_the_rank(self):
        w = SimWorld(4, executor="process")
        args = [threading.Lock() for _ in range(4)]
        with pytest.raises(
            CommunicatorError, match="arguments for rank 0"
        ):
            w.map_ranks(_sum_step, args)

    def test_world_access_is_detached_error(self):
        w = SimWorld(4, executor="process")
        with pytest.raises(CommunicatorError, match="detached"):
            w.map_ranks(_world_access_step)

    def test_unpicklable_return_degrades_to_typed_error(self):
        w = SimWorld(4, executor="process")
        with pytest.raises(CommunicatorError, match="unpicklable"):
            w.map_ranks(_return_unpicklable_step)

    def test_single_rank_runs_inline(self):
        # one task gains nothing from IPC: no pool spin-up, and the
        # context keeps its world (in-process fast path)
        ex = ProcessExecutor(max_workers=1)
        try:
            w = SimWorld(1, executor=ex)
            assert w.map_ranks(_world_access_step) == [1]
            assert ex._pool is None
        finally:
            ex.shutdown()

    def test_shared_panel_exports_once(self):
        ex = ProcessExecutor(max_workers=1)
        try:
            w = SimWorld(8, executor=ex)
            panel = np.arange(100_000, dtype=np.float64)
            got = w.map_ranks(_shared_panel_step, [panel] * 8, [2.0] * 8)
            assert got == [2.0 * (r % panel.size) for r in range(8)]
            # one rank-shared array -> one segment, not eight
            assert ex.registry.exported_arrays == 1
            assert ex.registry.reused >= 7
        finally:
            ex.shutdown()

    def test_shutdown_rebuilds_lazily(self):
        w = SimWorld(4, executor="process")
        assert w.map_ranks(_sum_step, [np.ones(4)] * 4) == [4] * 4
        ex = make_executor("process")
        ex.shutdown()
        ex.shutdown()  # idempotent
        assert w.map_ranks(_sum_step, [np.ones(4)] * 4) == [4] * 4

    def test_worker_count_validation(self):
        with pytest.raises(CommunicatorError):
            ProcessExecutor(max_workers=0)

    def test_worker_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "banana")
        with pytest.raises(CommunicatorError, match="REPRO_PROCESS_WORKERS"):
            ProcessExecutor()._worker_count()
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "0")
        with pytest.raises(CommunicatorError, match=">= 1"):
            ProcessExecutor()._worker_count()
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "3")
        assert ProcessExecutor()._worker_count() == 3

    def test_chunk_bounds_cover_and_preserve_order(self):
        for n, c in [(64, 1), (64, 3), (5, 5), (7, 3)]:
            bounds = _chunk_bounds(n, c)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            flat = [i for lo, hi in bounds for i in range(lo, hi)]
            assert flat == list(range(n))


class TestRankFailurePickling:
    def test_provenance_survives_pickle(self):
        exc = RankFailure("rank 3 crashed", rank=3, stage="Overlap", superstep=2)
        out = pickle.loads(pickle.dumps(exc))
        assert (out.rank, out.stage, out.superstep) == (3, "Overlap", 2)
        assert "rank 3 crashed" in str(out)


# ---------------------------------------------------------------------------
# P=64 determinism with interleaved subcomm collectives (+ chaos leg)
# ---------------------------------------------------------------------------

P64 = 64


def _p64_workload(backend, injector=None):
    """Two P=64 supersteps around even/odd subcomm collectives."""
    rng = np.random.default_rng(1234)
    payloads = [rng.integers(0, 100, size=96 + 8 * r) for r in range(P64)]
    w = SimWorld(P64, cori_haswell(), executor=backend)
    w.fault_injector = injector
    with w.stage_scope("Phase"):
        sums = w.map_ranks(_sum_step, payloads)
        evens = w.subcomm(list(range(0, P64, 2)), label="even")
        odds = w.subcomm(list(range(1, P64, 2)), label="odd")
        tot_e = evens.allreduce(sums[0::2], lambda a, b: a + b)
        tot_o = odds.allreduce(sums[1::2], lambda a, b: a + b)
        with w.stage_scope("Phase/combine"):
            combined = w.map_ranks(
                _shared_panel_step,
                [np.array([tot_e, tot_o], dtype=np.float64)] * P64,
                [1.0] * P64,
            )
    return w, sums, combined


class TestP64Determinism:
    @pytest.mark.parametrize("backend", ["thread", "process", "mpi"])
    def test_bit_identical_to_serial(self, backend):
        ws, sums_s, comb_s = _p64_workload("serial")
        wb, sums_b, comb_b = _p64_workload(backend)
        assert sums_s == sums_b
        assert comb_s == comb_b
        _assert_worlds_identical(ws, wb)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_chaos_rank_crash_rolls_back_then_recovers(self, backend):
        plan = FaultPlan(
            seed=5, rules=(rank_crash(stage="Phase", superstep=0, rank=37),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(RankFailure) as err:
            _p64_workload(backend, injector=injector)
        # provenance survives the process boundary
        assert err.value.rank == 37
        assert err.value.superstep == 0
        # the failed run charged nothing and a fresh world with the now-
        # exhausted injector reproduces the fault-free run bit-for-bit
        assert injector.exhausted
        w_retry, sums, comb = _p64_workload(backend, injector=injector)
        w_ref, sums_ref, comb_ref = _p64_workload("serial")
        assert (sums, comb) == (sums_ref, comb_ref)
        _assert_worlds_identical(w_ref, w_retry)

    def test_failed_superstep_charges_nothing_under_process(self):
        plan = FaultPlan(rules=(rank_crash(stage="Phase", rank=0),))
        w = SimWorld(P64, cori_haswell(), executor="process")
        w.fault_injector = FaultInjector(plan)
        with w.stage_scope("Phase"):
            with pytest.raises(RankFailure):
                w.map_ranks(_sum_step, [np.ones(8)] * P64)
        assert w.clock.stages() == []
        assert w.memory.by_stage() == {}


# ---------------------------------------------------------------------------
# the mpi emulator path
# ---------------------------------------------------------------------------


class _Rank1Comm(EmulatedComm):
    def Get_rank(self):
        return 1


class TestMPIEmulator:
    def test_emulated_comm_semantics(self):
        comm = EmulatedComm()
        assert comm.Get_rank() == 0 and comm.Get_size() == 1
        assert comm.bcast({"x": 1}) == {"x": 1}
        assert comm.scatter([10]) == 10
        assert comm.gather(7) == [7]
        assert comm.barrier() is None

    def test_registry_instance_is_emulated(self):
        ex = make_executor("mpi")
        assert isinstance(ex, MPIExecutor) and ex.emulated

    def test_accounting_identical_to_serial(self):
        _assert_worlds_identical(
            _charged_world("serial"), _charged_world("mpi")
        )

    def test_picklability_still_validated(self):
        # the emulator runs the same serialize path, so an unpicklable
        # step fails identically with or without an MPI installation
        w = SimWorld(4, executor="mpi")
        lock = threading.Lock()
        with pytest.raises(CommunicatorError, match="not picklable"):
            w.map_ranks(lambda ctx: lock.locked())

    def test_empty_tasks(self):
        assert MPIExecutor(EmulatedComm()).run(_sum_step, []) == []

    def test_worker_rank_cannot_run(self):
        ex = MPIExecutor(_Rank1Comm())
        with pytest.raises(CommunicatorError, match="controller-only"):
            ex.run(_sum_step, [])

    def test_controller_cannot_serve(self):
        with pytest.raises(CommunicatorError, match="controller"):
            MPIExecutor(EmulatedComm()).serve()

    def test_shutdown_noop_and_reusable(self):
        ex = MPIExecutor(EmulatedComm())
        ex.shutdown()
        ex.shutdown()
        w = SimWorld(2, executor=ex)
        assert w.map_ranks(_sum_step, [np.ones(2)] * 2) == [2, 2]


# ---------------------------------------------------------------------------
# pipeline-level equivalence (the acceptance contract, all four backends)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def readset():
    genome = make_genome(GenomeSpec(length=5000, seed=31))
    return sample_reads(
        genome,
        depth=10,
        mean_length=420,
        rng=7,
        error_rate=0.002,
        error_mix=(1.0, 0.0, 0.0),
    )


def _run_pipeline(reads, executor):
    cfg = PipelineConfig(nprocs=4, k=21, end_margin=20, executor=executor)
    return Pipeline.default().run(reads, cfg)


class TestPipelineEquivalenceParallel:
    @pytest.mark.parametrize("backend", ["process", "mpi"])
    def test_artifacts_and_accounting_identical(self, readset, backend):
        a = _run_pipeline(readset, "serial")
        b = _run_pipeline(readset, backend)
        assert a.contig_digest() == b.contig_digest()
        assert [c.sequence() for c in a.contigs.contigs] == [
            c.sequence() for c in b.contigs.contigs
        ]
        assert a.counts == b.counts
        assert a.report.stage_seconds == b.report.stage_seconds
        assert a.report.stage_comm_seconds == b.report.stage_comm_seconds
        for stage in a.world.clock.stages():
            assert np.array_equal(
                a.world.clock.per_rank_seconds(stage),
                b.world.clock.per_rank_seconds(stage),
            )
        assert a.world.log.bytes_by_op() == b.world.log.bytes_by_op()
        assert a.world.memory.by_stage() == b.world.memory.by_stage()
        assert a.peak_memory_bytes == b.peak_memory_bytes


# ---------------------------------------------------------------------------
# job-engine worker executor knob
# ---------------------------------------------------------------------------

SRC = {
    "kind": "simulate",
    "length": 2500,
    "seed": 51,
    "read_length": 350,
    "stride": 140,
}
CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}


class TestWorkerExecutorKnob:
    def test_worker_override_lands_in_summary(self, tmp_path):
        svc = JobService(tmp_path)
        job_id = svc.submit(SRC, CFG)
        done = svc.run_worker(executor="thread")
        assert [r.job_id for r in done] == [job_id]
        assert svc.result(job_id)["executor"] == "thread"

    def test_spec_executor_used_when_no_override(self, tmp_path):
        svc = JobService(tmp_path)
        job_id = svc.submit(SRC, dict(CFG, executor="thread"))
        svc.run_worker()
        assert svc.result(job_id)["executor"] == "thread"

    def test_env_default_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        svc = JobService(tmp_path)
        job_id = svc.submit(SRC, CFG)
        svc.run_worker()
        assert svc.result(job_id)["executor"] == "thread"

    def test_bad_backend_fails_at_worker_start(self, tmp_path):
        svc = JobService(tmp_path)
        from repro.service import JobError

        with pytest.raises(JobError, match="unknown executor"):
            svc.worker(executor="warp")

    def test_cli_worker_accepts_executor_flag(self, tmp_path, capsys):
        from repro.cli import jobs as jobs_cli

        rc = jobs_cli.main(
            ["worker", "--root", str(tmp_path), "--executor", "thread"]
        )
        assert rc == 0
        assert "processed 0 job(s)" in capsys.readouterr().out

    def test_process_backend_job_matches_serial(self, tmp_path):
        svc = JobService(tmp_path)
        a = svc.submit(SRC, CFG, name="serial-run")
        b = svc.submit(SRC, CFG, name="process-run")
        svc.run_worker(max_jobs=1)  # a, on the spec default (serial)
        svc.run_worker(max_jobs=1, executor="process")
        ra, rb = svc.result(a), svc.result(b)
        assert rb["executor"] == "process"
        assert ra["contig_digest"] == rb["contig_digest"]
        assert ra["contigs"] == rb["contigs"]


# ---------------------------------------------------------------------------
# align.batch scratch: per-executor-worker semantics
# ---------------------------------------------------------------------------


class TestScratchPerWorker:
    def test_scratch_reuses_buffer_in_same_worker(self):
        from repro.align.batch import _SCRATCH, _scratch, release_scratch

        release_scratch()
        a = _scratch("k", np.dtype(np.int64), 4, 8)
        b = _scratch("k", np.dtype(np.int64), 4, 8)
        assert a.base is b.base  # same backing allocation

    def test_fork_inherited_table_resets(self):
        from repro.align.batch import _SCRATCH, _scratch

        _scratch("k", np.dtype(np.int64), 4, 8)
        table_before = _SCRATCH.arrays
        _SCRATCH.pid = -1  # what a forked child observes: stale pid
        _scratch("k", np.dtype(np.int64), 4, 8)
        assert _SCRATCH.arrays is not table_before

    def test_release_scratch_frees_tables(self):
        from repro.align.batch import _SCRATCH, _scratch, release_scratch

        _scratch("k", np.dtype(np.float32), 2, 2)
        release_scratch()
        assert _SCRATCH.arrays == {}
