"""Unit tests for the local linear-walk assembly (§4.4)."""

import numpy as np
import pytest

from repro.align import OverlapClass, classify_overlap, extend_gapless
from repro.core import InducedGraph, local_assembly
from repro.errors import AssemblyError
from repro.seq import PackedReads, dna
from repro.sparse import LocalCoo
from repro.sparse.types import OVERLAP_DTYPE


def chain_fixture(n_reads=5, read_len=60, stride=25, seed=0, alternate=False):
    """A linear chain of overlapping reads with real edge payloads."""
    rng = np.random.default_rng(seed)
    genome = dna.random_codes(rng, stride * (n_reads - 1) + read_len)
    reads = []
    for i in range(n_reads):
        frag = genome[i * stride : i * stride + read_len]
        if alternate and i % 2 == 1:
            reads.append(dna.revcomp(frag))
        else:
            reads.append(frag.copy())
    rows, cols, vals = [], [], []
    k = 11
    for i in range(n_reads - 1):
        a, b = reads[i], reads[i + 1]
        # find an exact seed
        found = None
        b_try = [(True, b), (False, dna.revcomp(b))]
        for same, b_or in b_try:
            for x in range(len(a) - k + 1):
                w = a[x : x + k]
                for y in range(len(b_or) - k + 1):
                    if np.array_equal(w, b_or[y : y + k]):
                        found = (same, x, y)
                        break
                if found:
                    break
            if found:
                break
        same, sa, sb = found
        res = extend_gapless(a, b if same else dna.revcomp(b), sa, sb, k, x=10)
        info = classify_overlap(res, len(a), len(b), same, end_margin=0)
        assert info.kind == OverlapClass.DOVETAIL
        for u, v, f in ((i, i + 1, info.forward), (i + 1, i, info.reverse)):
            rec = np.zeros(1, dtype=OVERLAP_DTYPE)
            rec["dir"], rec["suffix"] = f.direction, f.suffix
            rec["pre"], rec["post"] = f.pre, f.post
            rows.append(u)
            cols.append(v)
            vals.append(rec)
    coo = LocalCoo(
        (n_reads, n_reads),
        np.array(rows),
        np.array(cols),
        np.concatenate(vals),
    )
    graph = InducedGraph(coo=coo, global_ids=np.arange(n_reads))
    packed = PackedReads.from_codes(reads, np.arange(n_reads))
    return genome, graph, packed


class TestLinearWalk:
    def test_single_chain_reconstructs_genome(self):
        genome, graph, packed = chain_fixture()
        result = local_assembly(graph, packed)
        assert len(result.contigs) == 1
        contig = result.contigs[0]
        assert contig.n_reads == 5
        ok = np.array_equal(contig.codes, genome) or np.array_equal(
            dna.revcomp(contig.codes), genome
        )
        assert ok
        assert not contig.truncated and not contig.circular

    def test_alternate_strand_chain(self):
        genome, graph, packed = chain_fixture(alternate=True, seed=1)
        result = local_assembly(graph, packed)
        assert len(result.contigs) == 1
        contig = result.contigs[0]
        ok = np.array_equal(contig.codes, genome) or np.array_equal(
            dna.revcomp(contig.codes), genome
        )
        assert ok

    def test_provenance_recorded(self):
        genome, graph, packed = chain_fixture()
        contig = local_assembly(graph, packed).contigs[0]
        assert sorted(contig.read_path) == list(range(5))
        assert len(contig.orientations) == 5
        assert set(contig.orientations) <= {1, -1}

    def test_roots_counted(self):
        _, graph, packed = chain_fixture()
        result = local_assembly(graph, packed)
        assert result.n_roots == 1  # second root consumed by the walk

    def test_two_read_contig(self):
        genome, graph, packed = chain_fixture(n_reads=2)
        result = local_assembly(graph, packed)
        assert len(result.contigs) == 1
        assert result.contigs[0].n_reads == 2

    def test_empty_graph(self):
        graph = InducedGraph(
            coo=LocalCoo.empty((0, 0), OVERLAP_DTYPE),
            global_ids=np.empty(0, dtype=np.int64),
        )
        result = local_assembly(graph, PackedReads.empty())
        assert result.contigs == []

    def test_singletons_skipped(self):
        genome, graph, packed = chain_fixture()
        # add two isolated vertices
        coo = LocalCoo(
            (7, 7), graph.coo.rows, graph.coo.cols, graph.coo.vals
        )
        reads2 = [packed.codes(i) for i in range(5)]
        reads2 += [dna.encode("ACGTACGT"), dna.encode("TTTTGGGG")]
        graph2 = InducedGraph(coo=coo, global_ids=np.arange(7))
        packed2 = PackedReads.from_codes(reads2, np.arange(7))
        result = local_assembly(graph2, packed2)
        assert len(result.contigs) == 1
        assert result.n_singletons == 2

    def test_branch_vertex_rejected(self):
        """Degree > 2 must be impossible after branch removal."""
        rows = np.array([0, 1, 0, 2, 0, 3])
        cols = np.array([1, 0, 2, 0, 3, 0])
        vals = np.zeros(6, dtype=OVERLAP_DTYPE)
        graph = InducedGraph(
            coo=LocalCoo((4, 4), rows, cols, vals),
            global_ids=np.arange(4),
        )
        packed = PackedReads.from_codes(
            [dna.encode("ACGT")] * 4, np.arange(4)
        )
        with pytest.raises(AssemblyError):
            local_assembly(graph, packed)

    def test_contig_helpers(self):
        genome, graph, packed = chain_fixture()
        contig = local_assembly(graph, packed).contigs[0]
        assert contig.length == contig.codes.size
        assert isinstance(contig.sequence(), str)
        assert len(contig.sequence()) == contig.length


class TestCycles:
    def _cycle_fixture(self):
        """Three reads overlapping in a ring (circular genome)."""
        rng = np.random.default_rng(3)
        circular = dna.random_codes(rng, 120)
        wrapped = np.concatenate([circular, circular[:40]])
        reads = [wrapped[0:60], wrapped[40:100], wrapped[80:160]]
        # ring edges 0->1->2->0
        k = 11
        rows, cols, vals = [], [], []
        for i, j in ((0, 1), (1, 2), (2, 0)):
            a, b = reads[i], reads[j]
            found = None
            for x in range(len(a) - k + 1):
                w = a[x : x + k]
                for y in range(len(b) - k + 1):
                    if np.array_equal(w, b[y : y + k]):
                        found = (x, y)
                        break
                if found:
                    break
            res = extend_gapless(a, b, found[0], found[1], k, x=10)
            info = classify_overlap(res, len(a), len(b), True, end_margin=0)
            if info.kind != OverlapClass.DOVETAIL:
                pytest.skip("fixture did not produce a clean ring")
            for u, v, f in ((i, j, info.forward), (j, i, info.reverse)):
                rec = np.zeros(1, dtype=OVERLAP_DTYPE)
                rec["dir"], rec["suffix"] = f.direction, f.suffix
                rec["pre"], rec["post"] = f.pre, f.post
                rows.append(u)
                cols.append(v)
                vals.append(rec)
        coo = LocalCoo((3, 3), np.array(rows), np.array(cols), np.concatenate(vals))
        graph = InducedGraph(coo=coo, global_ids=np.arange(3))
        return graph, PackedReads.from_codes(reads, np.arange(3))

    def test_cycles_skipped_by_default(self):
        graph, packed = self._cycle_fixture()
        result = local_assembly(graph, packed)
        assert result.n_cycles == 1
        assert result.contigs == []

    def test_cycles_emitted_when_requested(self):
        graph, packed = self._cycle_fixture()
        result = local_assembly(graph, packed, emit_cycles=True)
        assert result.n_cycles == 1
        assert len(result.contigs) == 1
        assert result.contigs[0].circular
