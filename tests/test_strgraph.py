"""Unit tests for bidirected edge semantics and transitive reduction."""

import numpy as np
import pytest

from repro.kmer import build_kmer_matrix, count_kmers
from repro.overlap import AlignmentParams, build_overlap_graph, detect_overlaps
from repro.seq import DistReadStore, GenomeSpec, make_genome, tile_reads
from repro.strgraph import (
    compose_direction,
    dst_end_bit,
    enters_forward,
    exits_forward,
    mirror_direction,
    src_end_bit,
    transitive_reduction,
    walk_compatible,
)


class TestEdgeCodec:
    def test_bits(self):
        assert src_end_bit(0b10) == 1 and dst_end_bit(0b10) == 0
        assert src_end_bit(0b01) == 0 and dst_end_bit(0b01) == 1

    def test_bits_vectorized(self):
        d = np.array([0, 1, 2, 3])
        assert list(src_end_bit(d)) == [0, 0, 1, 1]
        assert list(dst_end_bit(d)) == [0, 1, 0, 1]

    def test_mirror_swaps_bits(self):
        assert mirror_direction(0b10) == 0b01
        assert mirror_direction(0b01) == 0b10
        assert mirror_direction(0b00) == 0b00
        assert mirror_direction(0b11) == 0b11

    def test_mirror_involution_vectorized(self):
        d = np.arange(4)
        assert np.array_equal(mirror_direction(mirror_direction(d)), d)

    def test_walk_compatibility_rule(self):
        """Enter at one end, leave through the other (§2)."""
        for d_in in range(4):
            for d_out in range(4):
                expected = dst_end_bit(d_in) != src_end_bit(d_out)
                assert walk_compatible(d_in, d_out) == expected

    def test_compose_direction(self):
        # keep src bit of first edge, dst bit of second
        assert compose_direction(0b10, 0b10) == 0b10
        assert compose_direction(0b11, 0b00) == 0b10
        assert compose_direction(0b01, 0b11) == 0b01

    def test_traversal_helpers(self):
        assert exits_forward(0b10) is True
        assert exits_forward(0b01) is False
        assert enters_forward(0b10) is True
        assert enters_forward(0b11) is False


def build_R(grid, stride, genome_len=2400, read_len=300, k=15, pattern="forward"):
    genome = make_genome(GenomeSpec(length=genome_len, seed=31))
    rs = tile_reads(genome, read_len, stride, pattern)
    store = DistReadStore.from_global(grid, rs.reads)
    table = count_kmers(store, k, reliable_lo=1)
    A = build_kmer_matrix(store, table)
    C, _ = detect_overlaps(A)
    R, _ = build_overlap_graph(C, store, AlignmentParams(k=k, end_margin=5))
    return rs, store, R


class TestTransitiveReduction:
    def test_dense_tiling_reduces_to_chain(self, grid4):
        """Stride 100 on 300bp reads: each read overlaps its 2 successors;
        transitive reduction must keep only the adjacent edges."""
        rs, store, R = build_R(grid4, stride=100)
        result = transitive_reduction(R)
        S = result.S
        assert result.total_removed > 0
        deg = S.row_reduce().to_global()
        # a clean chain: all degree 2 except the two ends
        active = deg[deg > 0]
        assert (active == 1).sum() == 2
        assert (active >= 3).sum() == 0

    def test_keeps_adjacent_edges(self, grid4):
        rs, store, R = build_R(grid4, stride=100)
        S = transitive_reduction(R).S
        rows, cols, _ = S.to_global_coo()
        pairs = set(zip(rows.tolist(), cols.tolist()))
        n = store.nreads
        for i in range(n - 1):
            assert (i, i + 1) in pairs

    def test_sparse_tiling_nothing_to_remove(self, grid4):
        """Stride 200 on 300bp reads: only adjacent reads overlap, so the
        graph is already reduced."""
        rs, store, R = build_R(grid4, stride=200)
        result = transitive_reduction(R)
        assert result.total_removed == 0
        assert result.S.nnz() == R.nnz()

    def test_symmetry_preserved(self, grid4):
        rs, store, R = build_R(grid4, stride=100)
        S = transitive_reduction(R).S
        rows, cols, _ = S.to_global_coo()
        pairs = set(zip(rows.tolist(), cols.tolist()))
        assert all((c, r) in pairs for r, c in pairs)

    def test_alternate_strand_chain_reduces(self, grid4):
        rs, store, R = build_R(grid4, stride=100, pattern="alternate")
        S = transitive_reduction(R).S
        deg = S.row_reduce().to_global()
        active = deg[deg > 0]
        assert (active == 1).sum() == 2
        assert (active >= 3).sum() == 0

    def test_fuzz_zero_still_reduces_exact_overlaps(self, grid4):
        rs, store, R = build_R(grid4, stride=100)
        S0 = transitive_reduction(R, fuzz=0).S
        assert S0.nnz() < R.nnz()

    def test_rounds_bounded(self, grid4):
        rs, store, R = build_R(grid4, stride=100)
        result = transitive_reduction(R, max_rounds=1)
        assert result.rounds <= 1

    def test_grid_invariance(self):
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        patterns = []
        for p in (1, 4, 9):
            grid = ProcGrid(SimWorld(p, zero_cost()))
            rs, store, R = build_R(grid, stride=100)
            S = transitive_reduction(R).S
            r, c, _ = S.to_global_coo()
            patterns.append(set(zip(r.tolist(), c.tolist())))
        assert patterns[0] == patterns[1] == patterns[2]
