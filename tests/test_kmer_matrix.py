"""Unit tests for the reads-by-kmers matrix A."""

import numpy as np

from repro.kmer import build_kmer_matrix, canonical_kmers, count_kmers, encode_kmers
from repro.seq import DistReadStore, dna
from repro.sparse.types import KMER_POS_DTYPE


def build(grid, reads, k, lo=1):
    store = DistReadStore.from_global(grid, reads)
    table = count_kmers(store, k, reliable_lo=lo)
    return store, table, build_kmer_matrix(store, table)


class TestShapeAndPattern:
    def test_shape(self, grid4):
        rng = np.random.default_rng(0)
        reads = [dna.random_codes(rng, 40) for _ in range(10)]
        _, table, A = build(grid4, reads, 9)
        assert A.shape == (10, table.total)
        assert A.dtype == KMER_POS_DTYPE

    def test_every_entry_is_a_real_occurrence(self, grid4):
        rng = np.random.default_rng(1)
        reads = [dna.random_codes(rng, 40) for _ in range(8)]
        k = 9
        store, table, A = build(grid4, reads, k)
        rows, cols, vals = A.to_global_coo()
        # rebuild the kmer id -> value map
        id_to_kmer = {}
        for o in range(4):
            base = table.offsets[o]
            for i, v in enumerate(table.kmers_by_owner[o]):
                id_to_kmer[int(base + i)] = int(v)
        for r, c, val in zip(rows, cols, vals):
            codes = reads[int(r)]
            kmers = encode_kmers(codes, k)
            canon, orient = canonical_kmers(kmers, k)
            pos = int(val["pos"])
            assert int(canon[pos]) == id_to_kmer[int(c)]
            assert int(orient[pos]) == int(val["orient"])

    def test_first_occurrence_kept(self, grid4):
        # a read with an internal repeat: kmer appears twice
        s = "ACGTTACGTT" + "GGCA"
        reads = [dna.encode(s), dna.encode("TTTTTTTTTTTTTT")]
        k = 5
        store, table, A = build(grid4, reads, k)
        rows, cols, vals = A.to_global_coo()
        mask = rows == 0
        # ACGTT occurs at 0 and 5; entry must record pos 0
        kmers = encode_kmers(reads[0], k)
        canon, _ = canonical_kmers(kmers, k)
        dup_value = int(canon[0])
        id_map = {}
        for o in range(4):
            base = table.offsets[o]
            for i, v in enumerate(table.kmers_by_owner[o]):
                id_map[int(v)] = int(base + i)
        if dup_value in id_map:
            col = id_map[dup_value]
            entry = vals[mask & (cols == col)]
            assert entry.size == 1
            assert entry["pos"][0] == 0

    def test_unreliable_kmers_excluded(self, grid4):
        rng = np.random.default_rng(2)
        reads = [dna.random_codes(rng, 50) for _ in range(6)]
        store, table, A = build(grid4, reads, 11, lo=2)
        # every column id must be < table.total
        _, cols, _ = A.to_global_coo()
        if cols.size:
            assert cols.max() < table.total

    def test_grid_invariance_up_to_column_relabeling(self):
        """Column ids depend on the hash partition (owner = hash % P), so
        they permute with P; the invariant set is (read, kmer-value, pos)."""
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        rng = np.random.default_rng(3)
        reads = [dna.random_codes(rng, 45) for _ in range(9)]
        triple_sets = []
        for p in (1, 4, 9):
            grid = ProcGrid(SimWorld(p, zero_cost()))
            _, table, A = build(grid, reads, 9)
            id_to_kmer = {}
            for o in range(p):
                base = table.offsets[o]
                for i, v in enumerate(table.kmers_by_owner[o]):
                    id_to_kmer[int(base + i)] = int(v)
            r, c, v = A.to_global_coo()
            triple_sets.append(
                {
                    (int(ri), id_to_kmer[int(ci)], int(vi["pos"]))
                    for ri, ci, vi in zip(r, c, v)
                }
            )
        assert triple_sets[0] == triple_sets[1] == triple_sets[2]
