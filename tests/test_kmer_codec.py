"""Unit and property tests for the packed k-mer codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError
from repro.kmer import (
    MAX_K,
    canonical_kmers,
    encode_kmers,
    kmer_to_string,
    revcomp_kmers,
    string_to_kmer,
)
from repro.seq import dna

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=100)


class TestEncode:
    def test_counts(self):
        codes = dna.encode("ACGTACGT")
        assert encode_kmers(codes, 3).size == 6
        assert encode_kmers(codes, 8).size == 1
        assert encode_kmers(codes, 9).size == 0

    def test_values_match_strings(self):
        codes = dna.encode("ACGTA")
        kmers = encode_kmers(codes, 3)
        assert [kmer_to_string(k, 3) for k in kmers] == ["ACG", "CGT", "GTA"]

    def test_k_bounds(self):
        codes = dna.encode("ACGT")
        with pytest.raises(KmerError):
            encode_kmers(codes, 0)
        with pytest.raises(KmerError):
            encode_kmers(codes, MAX_K + 1)

    def test_k31_roundtrip(self):
        s = "ACGT" * 8  # 32 chars; take 31
        value, k = string_to_kmer(s[:31])
        assert k == 31
        assert kmer_to_string(value, 31) == s[:31]

    @given(dna_strings, st.integers(1, 11))
    @settings(max_examples=60, deadline=None)
    def test_property_rolling_equals_direct(self, s, k):
        if len(s) < k:
            return
        codes = dna.encode(s)
        kmers = encode_kmers(codes, k)
        for i in (0, len(kmers) - 1):
            assert kmer_to_string(int(kmers[i]), k) == s[i : i + k]


class TestRevcomp:
    def test_known_value(self):
        v, k = string_to_kmer("ACGTT")
        rc = revcomp_kmers(np.array([v], dtype=np.uint64), k)
        assert kmer_to_string(int(rc[0]), k) == "AACGT"

    @given(dna_strings.filter(lambda s: len(s) >= 1), st.integers(1, 31))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_string_revcomp(self, s, k):
        if len(s) < k:
            return
        codes = dna.encode(s)
        kmers = encode_kmers(codes, k)
        rcs = revcomp_kmers(kmers, k)
        assert kmer_to_string(int(rcs[0]), k) == dna.revcomp_str(s[:k])

    @given(dna_strings, st.integers(1, 31))
    @settings(max_examples=40, deadline=None)
    def test_property_involution(self, s, k):
        if len(s) < k:
            return
        kmers = encode_kmers(dna.encode(s), k)
        assert np.array_equal(revcomp_kmers(revcomp_kmers(kmers, k), k), kmers)


class TestCanonical:
    def test_canonical_invariant_under_revcomp(self):
        """canonical(x) == canonical(revcomp(x)) -- the property that makes
        strand-oblivious counting possible."""
        codes = dna.encode("GATTACAGATTACA")
        k = 5
        kmers = encode_kmers(codes, k)
        canon_fwd, _ = canonical_kmers(kmers, k)
        canon_rc, _ = canonical_kmers(revcomp_kmers(kmers, k), k)
        assert np.array_equal(canon_fwd, canon_rc)

    def test_orientation_flags(self):
        v, k = string_to_kmer("TTTTT")  # revcomp AAAAA is smaller
        canon, orient = canonical_kmers(np.array([v], dtype=np.uint64), k)
        assert kmer_to_string(int(canon[0]), k) == "AAAAA"
        assert orient[0] == -1

    def test_palindrome_is_forward(self):
        v, k = string_to_kmer("ACGT")  # self-revcomp
        canon, orient = canonical_kmers(np.array([v], dtype=np.uint64), k)
        assert int(canon[0]) == v
        assert orient[0] == 1

    @given(dna_strings, st.integers(1, 31))
    @settings(max_examples=40, deadline=None)
    def test_property_canonical_is_min(self, s, k):
        if len(s) < k:
            return
        kmers = encode_kmers(dna.encode(s), k)
        canon, _ = canonical_kmers(kmers, k)
        rc = revcomp_kmers(kmers, k)
        assert np.array_equal(canon, np.minimum(kmers, rc))


class TestStringHelpers:
    def test_string_to_kmer_validates(self):
        with pytest.raises(KmerError):
            string_to_kmer("A" * 32)

    def test_kmer_to_string_validates(self):
        with pytest.raises(KmerError):
            kmer_to_string(1 << 10, 3)
