"""Unit tests for branch-vertex masking (S -> L)."""

import numpy as np

from repro.core import branch_removal
from repro.sparse import DistSparseMatrix
from repro.sparse.types import OVERLAP_DTYPE


def graph_from_edges(grid, n, edges):
    """Build a pattern-symmetric OVERLAP_DTYPE matrix from undirected edges."""
    rows, cols = [], []
    for u, v in edges:
        rows += [u, v]
        cols += [v, u]
    vals = np.zeros(len(rows), dtype=OVERLAP_DTYPE)
    vals["suffix"] = 10
    return DistSparseMatrix.from_global_coo(
        grid, (n, n), np.array(rows), np.array(cols), vals
    )


class TestBranchRemoval:
    def test_paper_example(self, grid4):
        """§4.2's example: chains (v1,v2,v3), (v3,v4,v5,v6), (v3,v7,v8);
        v3 has degree 3 and must be masked, leaving three chains."""
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7)]
        S = graph_from_edges(grid4, 8, edges)
        result = branch_removal(S)
        assert result.branch_count == 1
        branch_ids = np.concatenate(result.branch_indices)
        assert list(branch_ids) == [2]
        deg = result.L.row_reduce().to_global()
        assert deg[2] == 0
        # remaining components: {0,1}, {3,4,5}, {6,7}
        assert list(deg) == [1, 1, 0, 1, 2, 1, 1, 1]

    def test_degrees_bounded_after_masking(self, grid):
        rng = np.random.default_rng(0)
        n = 30
        edges = set()
        while len(edges) < 50:
            u, v = rng.integers(0, n, 2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        S = graph_from_edges(grid, n, sorted(edges))
        result = branch_removal(S)
        deg = result.L.row_reduce().to_global()
        assert deg.max() <= 2

    def test_no_branches_is_noop(self, grid4):
        edges = [(i, i + 1) for i in range(9)]
        S = graph_from_edges(grid4, 10, edges)
        result = branch_removal(S)
        assert result.branch_count == 0
        assert result.L.nnz() == S.nnz()

    def test_degree_vector_exposed(self, grid4):
        edges = [(0, 1), (1, 2)]
        S = graph_from_edges(grid4, 4, edges)
        result = branch_removal(S)
        assert list(result.degrees.to_global()) == [1, 2, 1, 0]

    def test_custom_threshold(self, grid4):
        edges = [(0, 1), (1, 2)]
        S = graph_from_edges(grid4, 3, edges)
        result = branch_removal(S, threshold=2)
        assert result.branch_count == 1  # vertex 1 (degree 2) masked

    def test_masking_clears_rows_and_cols(self, grid4):
        edges = [(0, 1), (1, 2), (1, 3)]
        S = graph_from_edges(grid4, 4, edges)
        result = branch_removal(S)
        rows, cols, _ = result.L.to_global_coo()
        assert 1 not in set(rows.tolist()) | set(cols.tolist())
