"""Unit tests for read-sequence redistribution and the count-limit path."""

import numpy as np
import pytest

from repro.core import exchange_sequences
from repro.errors import DistributionError
from repro.seq import DistReadStore, dna
from repro.sparse import DistVector


def make_store(grid, n=16, seed=0):
    rng = np.random.default_rng(seed)
    reads = [dna.random_codes(rng, int(rng.integers(20, 50))) for _ in range(n)]
    return reads, DistReadStore.from_global(grid, reads)


class TestExchange:
    def test_reads_land_on_assigned_ranks(self, grid):
        reads, store = make_store(grid)
        rng = np.random.default_rng(1)
        assignment = rng.integers(0, grid.nprocs, size=len(reads))
        p = DistVector.from_global(grid, assignment.astype(np.int64))
        result = exchange_sequences(store, p)
        for rank, shard in enumerate(result.shards):
            expected = np.flatnonzero(assignment == rank)
            assert np.array_equal(shard.ids, expected)
            for rid in expected:
                got = shard.codes(shard.index_of(int(rid)))
                assert np.array_equal(got, reads[rid])

    def test_unassigned_reads_dropped(self, grid4):
        reads, store = make_store(grid4)
        assignment = np.full(len(reads), -1, dtype=np.int64)
        assignment[3] = 2
        p = DistVector.from_global(grid4, assignment)
        result = exchange_sequences(store, p)
        total = sum(s.count for s in result.shards)
        assert total == 1
        assert result.shards[2].ids[0] == 3

    def test_shards_are_id_sorted(self, grid4):
        reads, store = make_store(grid4, n=20, seed=2)
        assignment = np.zeros(len(reads), dtype=np.int64)  # all to rank 0
        p = DistVector.from_global(grid4, assignment)
        result = exchange_sequences(store, p)
        assert np.array_equal(result.shards[0].ids, np.arange(len(reads)))

    def test_misaligned_vector_rejected(self, grid4):
        reads, store = make_store(grid4)
        p = DistVector.zeros(grid4, len(reads) + 1)
        with pytest.raises(DistributionError):
            exchange_sequences(store, p)


class TestCountLimit:
    def test_small_limit_triggers_contiguous_datatype(self, grid4):
        reads, store = make_store(grid4, n=12, seed=3)
        rng = np.random.default_rng(4)
        p = DistVector.from_global(
            grid4, rng.integers(0, 4, size=len(reads)).astype(np.int64)
        )
        result = exchange_sequences(store, p, count_limit=8)
        assert result.used_contiguous_datatype
        # every transfer stays a single message (the paper's point)
        assert all(plan.messages == 1 for plan in result.plans)

    def test_limit_does_not_change_payload(self, grid4):
        reads, store = make_store(grid4, n=12, seed=5)
        rng = np.random.default_rng(6)
        assignment = rng.integers(0, 4, size=len(reads)).astype(np.int64)

        def run(limit):
            p = DistVector.from_global(grid4, assignment.copy())
            res = exchange_sequences(store, p, count_limit=limit)
            return [
                (list(s.ids), s.buffer.tobytes()) for s in res.shards
            ]

        unlimited = run(2**31 - 1)
        tiny = run(4)
        assert unlimited == tiny

    def test_total_bytes_accounting(self, grid4):
        reads, store = make_store(grid4, n=12, seed=7)
        p = DistVector.from_global(
            grid4,
            np.arange(len(reads), dtype=np.int64) % 4,
        )
        result = exchange_sequences(store, p)
        # bytes moved = packed sizes of reads leaving their owner
        moved = 0
        for r in range(4):
            lo, hi = grid4.vec_block(len(reads), r)
            for rid in range(lo, hi):
                if rid % 4 != r:
                    moved += len(reads[rid])
        assert result.total_bytes == moved
