"""Unit tests for the composable stage-based pipeline engine."""

import dataclasses

import pytest

from repro import CollectingObserver, Pipeline, PipelineConfig, run_pipeline
from repro.errors import PipelineError
from repro.pipeline import MAIN_STAGES, STAGE_REGISTRY, Stage, register_stage
from repro.seq import GenomeSpec, make_genome, tile_reads


@pytest.fixture(scope="module")
def tiled():
    genome = make_genome(GenomeSpec(length=2500, seed=51))
    return genome, tile_reads(genome, 350, 140)


@pytest.fixture(scope="module")
def cfg():
    return PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5)


@pytest.fixture(scope="module")
def full_run(tiled, cfg):
    _, rs = tiled
    return Pipeline.default().run(rs, cfg)


def _sequences(result):
    return sorted(c.sequence() for c in result.contigs.contigs)


class TestRegistryAndOrdering:
    def test_main_stages_registered(self):
        Pipeline.default()  # force stage module import
        for name in MAIN_STAGES:
            assert name in STAGE_REGISTRY

    def test_default_order_matches_paper(self):
        assert Pipeline.default().stage_names == MAIN_STAGES

    def test_optional_stages_appended(self):
        pipe = Pipeline.default(scaffold=True, polish=True)
        assert pipe.stage_names == MAIN_STAGES + ["Scaffold", "Polish"]

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline(["CountKmer", "NoSuchStage"])

    def test_duplicate_stage_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline(["CountKmer", "CountKmer"])

    def test_register_requires_name(self):
        class Nameless(Stage):
            pass

        with pytest.raises(PipelineError):
            register_stage(Nameless)

    def test_custom_stage_runs(self, tiled, cfg):
        _, rs = tiled

        class NnzAudit(Stage):
            name = "NnzAudit"
            requires = ("S",)
            produces = ("s_nnz_audit",)

            def run(self, ctx):
                ctx.publish("s_nnz_audit", ctx.require("S").nnz())

        pipe = Pipeline(list(MAIN_STAGES) + [NnzAudit()])
        res = pipe.run(rs, cfg, keep_artifacts=True)
        assert res.artifacts["s_nnz_audit"] == res.counts["S_nnz"]
        assert res.stages_run[-1] == "NnzAudit"


class TestPartialRuns:
    def test_until_stops_after_stage(self, tiled, cfg):
        _, rs = tiled
        res = Pipeline.default().run(rs, cfg, until="TrReduction")
        assert res.stages_run == MAIN_STAGES[:4]
        assert res.contigs is None
        assert ("ExtractContig", "until") in res.stages_skipped
        assert "S" in res.artifacts and "R" in res.artifacts

    def test_until_unknown_stage_rejected(self, tiled, cfg):
        _, rs = tiled
        with pytest.raises(PipelineError):
            Pipeline.default().run(rs, cfg, until="Consensus")

    def test_partial_breakdown_has_no_contig_time(self, tiled, cfg):
        _, rs = tiled
        res = Pipeline.default().run(rs, cfg, until="DetectOverlap")
        breakdown = res.main_stage_breakdown()
        assert breakdown["CountKmer"] > 0
        assert breakdown["Alignment"] == 0
        assert breakdown["ExtractContig"] == 0


class TestArtifactInjection:
    def test_injected_overlaps_skip_upstream(self, tiled, cfg, full_run):
        _, rs = tiled
        pipe = Pipeline.default()
        partial = pipe.run(rs, cfg, until="DetectOverlap")
        res = pipe.run(rs, cfg, from_artifacts={"C": partial.artifacts["C"]})
        assert res.stages_run == ["Alignment", "TrReduction", "ExtractContig"]
        assert {name for name, why in res.stages_skipped if why == "artifact"} == {
            "CountKmer",
            "DetectOverlap",
        }
        assert _sequences(res) == _sequences(full_run)

    def test_injected_matrix_rehomed_to_new_world(self, tiled, cfg, full_run):
        _, rs = tiled
        pipe = Pipeline.default()
        partial = pipe.run(rs, cfg, until="TrReduction")
        res = pipe.run(rs, cfg, from_artifacts={"S": partial.artifacts["S"]})
        # the new run owns its own world and charged contig time to it
        assert res.world is not partial.world
        assert res.stage_seconds("ExtractContig") > 0
        assert res.artifacts["S"].grid is not partial.artifacts["S"].grid

    def test_missing_requirement_reported(self, cfg):
        with pytest.raises(PipelineError, match="reads"):
            Pipeline.default().run(
                None, cfg, from_artifacts={"S": object()}, until="ExtractContig"
            )


class TestCheckpointResume:
    def test_full_resume_skips_everything(self, tiled, cfg, full_run, tmp_path):
        _, rs = tiled
        pipe = Pipeline.default()
        first = pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        assert first.stages_run == MAIN_STAGES
        second = pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        assert second.stages_run == []
        assert [why for _, why in second.stages_skipped] == ["checkpoint"] * 5
        assert _sequences(second) == _sequences(full_run)
        # counters survive the round trip
        for key in ("reliable_kmers", "A_nnz", "C_nnz", "R_nnz", "S_nnz", "contigs"):
            assert second.counts[key] == first.counts[key]

    def test_changed_contig_knob_reuses_overlap_stages(
        self, tiled, cfg, full_run, tmp_path
    ):
        """The acceptance scenario: editing partition_method re-runs only
        ExtractContig; CountKmer/DetectOverlap/Alignment/TrReduction load
        from checkpoint."""
        _, rs = tiled
        pipe = Pipeline.default()
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        changed = dataclasses.replace(cfg, partition_method="greedy")
        res = pipe.run(rs, changed, checkpoint_dir=tmp_path)
        assert res.stages_run == ["ExtractContig"]
        assert {name for name, why in res.stages_skipped if why == "checkpoint"} == {
            "CountKmer",
            "DetectOverlap",
            "Alignment",
            "TrReduction",
        }
        assert _sequences(res) == _sequences(full_run)

    def test_changed_upstream_knob_invalidates_downstream(
        self, tiled, cfg, tmp_path
    ):
        _, rs = tiled
        pipe = Pipeline.default()
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        changed = dataclasses.replace(cfg, xdrop=cfg.xdrop + 5)
        res = pipe.run(rs, changed, checkpoint_dir=tmp_path)
        assert res.stages_run == ["Alignment", "TrReduction", "ExtractContig"]
        assert {name for name, why in res.stages_skipped} == {
            "CountKmer",
            "DetectOverlap",
        }

    def test_changed_reads_invalidates_everything(self, tiled, cfg, tmp_path):
        genome, rs = tiled
        pipe = Pipeline.default()
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        other = tile_reads(make_genome(GenomeSpec(length=2500, seed=52)), 350, 140)
        res = pipe.run(other, cfg, checkpoint_dir=tmp_path)
        assert res.stages_run == MAIN_STAGES


class TestCheckpointFidelity:
    def test_resume_preserves_tr_alias(self, tiled, cfg, tmp_path):
        """'S' is checkpointed by reference: after a resume it must still
        be the same object as tr.S (and not serialized twice)."""
        _, rs = tiled
        pipe = Pipeline.default()
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        res = pipe.run(
            rs, cfg, checkpoint_dir=tmp_path, until="TrReduction",
            keep_artifacts=True,
        )
        assert res.artifacts["tr"].S is res.artifacts["S"]

    def test_extra_config_invalidates_optional_stage(self, tiled, cfg, tmp_path):
        from repro.scaffold import ScaffoldConfig

        _, rs = tiled
        pipe = Pipeline.default(scaffold=True)
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        changed = dataclasses.replace(
            cfg, extra={"scaffold": ScaffoldConfig(min_overlap=9999)}
        )
        res = pipe.run(rs, changed, checkpoint_dir=tmp_path)
        assert res.stages_run == ["Scaffold"]

    def test_string_stage_names_resolve_in_fresh_process(self):
        import subprocess
        import sys

        code = (
            "from repro.pipeline import Pipeline; "
            "print(Pipeline(['CountKmer', 'DetectOverlap']).stage_names)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert "['CountKmer', 'DetectOverlap']" in out.stdout


class TestObserverHooks:
    def test_hook_call_order(self, tiled, cfg):
        _, rs = tiled
        obs = CollectingObserver()
        Pipeline.default(observers=[obs]).run(rs, cfg)
        expected = []
        for name in MAIN_STAGES:
            expected += [("start", name), ("end", name)]
        assert obs.events == expected
        for name in MAIN_STAGES:
            assert obs.timings[name].modeled_seconds >= 0
            assert obs.timings[name].wall_seconds > 0

    def test_skip_hooks_fire(self, tiled, cfg, tmp_path):
        _, rs = tiled
        obs = CollectingObserver()
        pipe = Pipeline.default()
        pipe.run(rs, cfg, checkpoint_dir=tmp_path)
        pipe.add_observer(obs)
        pipe.run(rs, cfg, checkpoint_dir=tmp_path, until="TrReduction")
        assert obs.events == [("skip", n) for n in MAIN_STAGES]
        assert obs.skips["CountKmer"] == "checkpoint"
        assert obs.skips["ExtractContig"] == "until"

    def test_timing_matches_report(self, tiled, cfg):
        _, rs = tiled
        obs = CollectingObserver()
        res = Pipeline.default(observers=[obs]).run(rs, cfg)
        for name in MAIN_STAGES:
            assert obs.timings[name].modeled_seconds == pytest.approx(
                res.stage_seconds(name)
            )


class TestCompatWrapper:
    def test_run_pipeline_matches_engine(self, tiled, cfg, full_run):
        _, rs = tiled
        res = run_pipeline(rs, cfg)
        assert _sequences(res) == _sequences(full_run)
        assert res.counts["contigs"] == 1
        # seed-era counters all present
        for key in (
            "reads",
            "bases",
            "reliable_kmers",
            "A_nnz",
            "C_nnz",
            "R_nnz",
            "S_nnz",
            "tr_rounds",
            "tr_removed",
            "contigs",
            "peak_memory_bytes",
        ):
            assert key in res.counts

    def test_wrapper_exposes_engine_features(self, tiled, cfg):
        _, rs = tiled
        res = run_pipeline(rs, cfg, until="CountKmer")
        assert res.stages_run == ["CountKmer"]
        assert res.contigs is None

    def test_keep_graphs_still_retains_matrices(self, tiled):
        _, rs = tiled
        config = PipelineConfig(
            nprocs=4, k=17, reliable_lo=1, end_margin=5, keep_graphs=True
        )
        res = run_pipeline(rs, config)
        assert res.R is not None and res.S is not None
        assert res.reads is not None


class TestOptionalStages:
    def test_scaffold_and_polish_stages(self, tiled, cfg):
        _, rs = tiled
        pipe = Pipeline.default(scaffold=True, polish=True)
        res = pipe.run(rs, cfg, keep_artifacts=True)
        assert "scaffolds" in res.artifacts
        assert "polished" in res.artifacts
        assert res.counts["scaffolds"] >= 1
        assert res.stages_run == MAIN_STAGES + ["Scaffold", "Polish"]
