"""Unit and property tests for the local SpGEMM kernel."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparseFormatError
from repro.sparse import LocalCoo, arithmetic_semiring, count_semiring, expand_join, spgemm_local


def to_coo(m: sp.coo_matrix) -> LocalCoo:
    return LocalCoo(m.shape, m.row, m.col, m.data)


class TestExpandJoin:
    def test_simple_join(self):
        a = np.array([1, 2, 2, 5])
        b = np.array([2, 2, 3, 5, 5])
        ia, ib = expand_join(a, b)
        pairs = set(zip(ia.tolist(), ib.tolist()))
        # key 2: a idx {1,2} x b idx {0,1}; key 5: a idx {3} x b idx {3,4}
        assert pairs == {(1, 0), (1, 1), (2, 0), (2, 1), (3, 3), (3, 4)}

    def test_no_common_keys(self):
        ia, ib = expand_join(np.array([1, 2]), np.array([3, 4]))
        assert ia.size == 0 and ib.size == 0

    def test_deterministic_order(self):
        a = np.array([7, 7])
        b = np.array([7, 7])
        ia, ib = expand_join(a, b)
        assert list(zip(ia, ib)) == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestSpgemmLocal:
    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        A = sp.random(20, 15, density=0.2, random_state=rng, format="coo")
        B = sp.random(15, 25, density=0.2, random_state=rng, format="coo")
        C, flops = spgemm_local(to_coo(A), to_coo(B), arithmetic_semiring())
        ref = (A @ B).toarray()
        got = np.zeros_like(ref)
        got[C.rows, C.cols] = C.vals
        assert np.allclose(got, ref)
        assert flops > 0

    def test_dimension_mismatch(self):
        a = LocalCoo.empty((2, 3), np.dtype(np.float64))
        b = LocalCoo.empty((4, 2), np.dtype(np.float64))
        with pytest.raises(SparseFormatError):
            spgemm_local(a, b, arithmetic_semiring())

    def test_empty_operands(self):
        a = LocalCoo.empty((2, 3), np.dtype(np.float64))
        b = LocalCoo.empty((3, 2), np.dtype(np.float64))
        C, flops = spgemm_local(a, b, arithmetic_semiring())
        assert C.nnz == 0 and flops == 0

    def test_exclude_diagonal(self):
        eye = LocalCoo(
            (3, 3), np.arange(3), np.arange(3), np.ones(3)
        )
        C, _ = spgemm_local(eye, eye, arithmetic_semiring(), exclude_diagonal=True)
        assert C.nnz == 0

    def test_count_semiring_counts_shared_keys(self):
        # A: 2 reads x 3 kmers
        A = LocalCoo(
            (2, 3),
            np.array([0, 0, 1, 1]),
            np.array([0, 1, 1, 2]),
            np.ones(4, dtype=np.int64),
        )
        C, _ = spgemm_local(A, A.transpose(), count_semiring(), exclude_diagonal=True)
        dense = np.zeros((2, 2), dtype=np.int64)
        dense[C.rows, C.cols] = C.vals
        assert dense[0, 1] == 1 and dense[1, 0] == 1

    def test_flops_counts_expanded_products(self):
        A = LocalCoo(
            (2, 1), np.array([0, 1]), np.array([0, 0]), np.ones(2)
        )
        _, flops = spgemm_local(A, A.transpose(), arithmetic_semiring())
        assert flops == 4  # 2 entries share the single contraction key

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 12),
        k=st.integers(1, 12),
        m=st.integers(1, 12),
        density=st.floats(0.05, 0.6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scipy(self, seed, n, k, m, density):
        rng = np.random.default_rng(seed)
        A = sp.random(n, k, density=density, random_state=rng, format="coo")
        B = sp.random(k, m, density=density, random_state=rng, format="coo")
        C, _ = spgemm_local(to_coo(A), to_coo(B), arithmetic_semiring())
        ref = (A @ B).toarray()
        got = np.zeros_like(ref)
        if C.nnz:
            got[C.rows, C.cols] = C.vals
        assert np.allclose(got, ref)
