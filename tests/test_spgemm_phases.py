"""Memory-budgeted phased SpGEMM: symbolic planner + column-blocked SUMMA.

The contracts under test (ISSUE 5):

* ``spgemm_symbolic`` bounds are exact on flops and upper bounds on nnz;
* bulk / stream / phased (b in {1, 2, 4}) SpGEMM produce *bit-identical*
  matrices under both the serial and thread executor backends;
* for a fixed mode, clocks, comm logs and memory peaks are bit-identical
  across backends;
* ``phases=1`` reproduces the default path exactly (blocks, clocks,
  comm log, memory);
* stream / phased peak modeled bytes never exceed bulk's;
* the planner picks a phase count whose estimated and observed peaks fit
  a budget the unphased run violates, and budget violations are recorded
  per stage when no plan can fit;
* the pipeline / CLI wiring (``memory_budget_mb`` / ``--memory-budget-mb``)
  is bit-identical to an unbudgeted run and surfaces violations.
"""

import numpy as np
import pytest

from repro.errors import DistributionError, PipelineError
from repro.mpi import MemoryBudget, MemoryMeter, ProcGrid, SimWorld, cori_haswell
from repro.pipeline import PipelineConfig, run_pipeline
from repro.seq import dna, tile_reads
from repro.sparse import (
    DistSparseMatrix,
    LocalCoo,
    SpgemmPlan,
    arithmetic_semiring,
    count_semiring,
    spgemm_local,
    spgemm_symbolic,
)
from repro.strgraph import transitive_reduction

from tests.test_strgraph import build_R

MODES = [("bulk", 1), ("bulk", 2), ("bulk", 4), ("stream", 1), ("stream", 2), ("stream", 4)]
BACKENDS = ["serial", "thread"]


def random_dist(grid, shape, density, seed):
    rng = np.random.default_rng(seed)
    n, m = shape
    nnz = max(int(n * m * density), 1)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, m, size=nnz)
    vals = rng.integers(1, 5, size=nnz).astype(np.int64)
    keys = rows * m + cols
    _, first = np.unique(keys, return_index=True)
    return DistSparseMatrix.from_global_coo(
        grid, shape, rows[first], cols[first], vals[first]
    )


def assert_blocks_identical(x: DistSparseMatrix, y: DistSparseMatrix, ctx=None):
    assert x.shape == y.shape, ctx
    for rank, (bx, by) in enumerate(zip(x.blocks, y.blocks)):
        assert np.array_equal(bx.rows, by.rows), (ctx, rank)
        assert np.array_equal(bx.cols, by.cols), (ctx, rank)
        assert np.array_equal(bx.vals, by.vals), (ctx, rank)


def world_accounting(world: SimWorld):
    """Everything a backend could perturb: clocks, comm log, memory."""
    clocks = {
        s: world.clock.per_rank_seconds(s).copy() for s in world.clock.stages()
    }
    events = [
        (e.op, e.stage, e.nprocs, e.total_bytes, e.max_bytes, e.messages,
         e.modeled_seconds)
        for e in world.log.events
    ]
    return clocks, events, world.memory.by_stage()


def assert_accounting_equal(wa, wb, ctx=None):
    ca, ea, ma = wa
    cb, eb, mb = wb
    assert list(ca) == list(cb), ctx
    for s in ca:
        assert np.array_equal(ca[s], cb[s]), (ctx, s)
    assert ea == eb, ctx
    assert ma == mb, ctx


# ---------------------------------------------------------------------------
# kernel: symbolic pass
# ---------------------------------------------------------------------------


class TestSpgemmSymbolic:
    @pytest.mark.parametrize("seed", range(12))
    def test_flops_exact_and_nnz_bounded(self, seed):
        rng = np.random.default_rng(seed)
        n, k, m = rng.integers(1, 40, size=3)
        da = (rng.random((n, k)) < 0.3) * rng.integers(1, 5, (n, k))
        db = (rng.random((k, m)) < 0.3) * rng.integers(1, 5, (k, m))
        a = LocalCoo.from_dense(da.astype(np.int64))
        b = LocalCoo.from_dense(db.astype(np.int64))
        flops, nnz_ub = spgemm_symbolic(a, b)
        prod, actual_flops = spgemm_local(a, b, arithmetic_semiring(np.int64))
        assert int(flops.sum()) == actual_flops
        col_nnz = np.bincount(prod.cols, minlength=m)
        assert (col_nnz <= nnz_ub).all()
        assert (nnz_ub <= flops).all()

    def test_empty_operands(self):
        a = LocalCoo.empty((5, 4), np.dtype(np.int64))
        b = LocalCoo.empty((4, 7), np.dtype(np.int64))
        flops, nnz_ub = spgemm_symbolic(a, b)
        assert flops.shape == (7,) and not flops.any()
        assert nnz_ub.shape == (7,) and not nnz_ub.any()

    def test_shape_mismatch_rejected(self):
        from repro.errors import SparseFormatError

        a = LocalCoo.empty((5, 4), np.dtype(np.int64))
        b = LocalCoo.empty((5, 7), np.dtype(np.int64))
        with pytest.raises(SparseFormatError):
            spgemm_symbolic(a, b)


# ---------------------------------------------------------------------------
# distributed: modes x phases x backends property corpus
# ---------------------------------------------------------------------------


class TestPhasedIdentity:
    @pytest.mark.parametrize("nprocs", [1, 4, 9, 16])
    def test_modes_and_phases_bit_identical(self, nprocs):
        """Every (mode, b) combination reproduces the default product
        block-for-block, including rectangular shapes."""
        world = SimWorld(nprocs, cori_haswell())
        grid = ProcGrid(world)
        A = random_dist(grid, (41, 29), 0.2, seed=nprocs + 1)
        B = random_dist(grid, (29, 53), 0.25, seed=nprocs + 70)
        sr = arithmetic_semiring(np.int64)
        ref = A.spgemm(B, sr)
        for mode, b in MODES:
            C = A.spgemm(B, sr, merge_mode=mode, phases=b)
            assert_blocks_identical(C, ref, ctx=(mode, b))

    @pytest.mark.parametrize("exclude", [False, True])
    def test_exclude_diagonal_folded_into_merge(self, exclude):
        """The folded diagonal mask matches an explicit post-prune, for
        every mode and phase count."""
        world = SimWorld(9, cori_haswell())
        grid = ProcGrid(world)
        A = random_dist(grid, (33, 33), 0.3, seed=5)
        sr = count_semiring()
        full = A.spgemm(A, sr)
        want = full.prune(lambda v, r, c: r == c) if exclude else full
        for mode, b in MODES:
            C = A.spgemm(A, sr, exclude_diagonal=exclude, merge_mode=mode, phases=b)
            assert_blocks_identical(C, want, ctx=(mode, b, exclude))

    def test_diagonal_prune_never_counts_toward_memory(self):
        """exclude_diagonal can only shrink the observed working set."""
        peaks = {}
        for exclude in (False, True):
            world = SimWorld(4, cori_haswell())
            grid = ProcGrid(world)
            A = random_dist(grid, (40, 40), 0.4, seed=9)
            A.spgemm(A, count_semiring(), exclude_diagonal=exclude)
            peaks[exclude] = world.memory.peak_overall()
        assert peaks[True] <= peaks[False]

    def test_phases_one_is_the_default_path(self):
        """phases=1 must reproduce today's behavior bit-identically:
        blocks, clocks, comm log and memory peaks."""
        for mode in ("bulk", "stream"):
            runs = {}
            for phases in (None, 1):
                world = SimWorld(16, cori_haswell())
                grid = ProcGrid(world)
                A = random_dist(grid, (50, 50), 0.25, seed=21)
                C = A.spgemm(
                    A, arithmetic_semiring(np.int64),
                    merge_mode=mode, phases=phases,
                )
                runs[phases] = (C, world_accounting(world))
            assert_blocks_identical(runs[None][0], runs[1][0], ctx=mode)
            assert_accounting_equal(runs[None][1], runs[1][1], ctx=mode)

    def test_invalid_phases_rejected(self):
        world = SimWorld(4, cori_haswell())
        grid = ProcGrid(world)
        A = random_dist(grid, (10, 10), 0.3, seed=2)
        with pytest.raises(DistributionError):
            A.spgemm(A, arithmetic_semiring(np.int64), phases=0)

    @pytest.mark.parametrize("mode,b", MODES)
    def test_backends_identical_accounting(self, mode, b):
        """For a fixed (mode, b), serial and thread executors produce
        bit-identical matrices, clocks, comm logs and memory peaks."""
        results = {}
        for backend in BACKENDS:
            world = SimWorld(16, cori_haswell(), executor=backend)
            grid = ProcGrid(world)
            A = random_dist(grid, (60, 44), 0.2, seed=33)
            B = random_dist(grid, (44, 60), 0.25, seed=77)
            with world.stage_scope("Mult"):
                C = A.spgemm(
                    B, arithmetic_semiring(np.int64),
                    merge_mode=mode, phases=b,
                )
            results[backend] = (C, world_accounting(world))
        assert_blocks_identical(
            results["serial"][0], results["thread"][0], ctx=(mode, b)
        )
        assert_accounting_equal(
            results["serial"][1], results["thread"][1], ctx=(mode, b)
        )

    def test_stream_and_phased_peaks_never_exceed_bulk(self):
        peaks = {}
        for mode, b in MODES:
            world = SimWorld(16, cori_haswell())
            grid = ProcGrid(world)
            A = random_dist(grid, (80, 80), 0.3, seed=13)
            A.spgemm(A, arithmetic_semiring(np.int64), merge_mode=mode, phases=b)
            peaks[(mode, b)] = world.memory.peak_overall()
        bulk = peaks[("bulk", 1)]
        for key, peak in peaks.items():
            assert peak <= bulk, (key, peak, bulk)
        # more phases can only help on this transient-dominated input
        assert peaks[("bulk", 4)] < peaks[("bulk", 1)]


# ---------------------------------------------------------------------------
# planner + budget
# ---------------------------------------------------------------------------


class TestPlanner:
    def _operand(self, nprocs=16, seed=3):
        world = SimWorld(nprocs, cori_haswell())
        grid = ProcGrid(world)
        return world, random_dist(grid, (80, 80), 0.3, seed=seed)

    def test_unlimited_budget_plans_one_phase(self):
        _, A = self._operand()
        sr = arithmetic_semiring(np.int64)
        for budget in (None, MemoryBudget(None)):
            plan = A.plan_spgemm(A, sr, budget)
            assert plan.phases == 1 and plan.fits

    def test_estimate_is_an_upper_bound(self):
        """A plan that fits guarantees the executor's modeled peak fits."""
        world, A = self._operand()
        sr = arithmetic_semiring(np.int64)
        for b in (1, 2, 4):
            plan = SpgemmPlan.choose(A, A, sr, MemoryBudget(1.0), max_phases=b)
            est = plan.est_by_phases[b]
            fresh_world, fresh_A = self._operand()
            fresh_A.spgemm(fresh_A, sr, phases=b)
            assert fresh_world.memory.peak_overall() <= est, b

    def test_planner_fits_budget_unphased_violates(self):
        world, A = self._operand()
        sr = arithmetic_semiring(np.int64)
        A.spgemm(A, sr)
        bulk_peak = world.memory.peak_overall()

        world2, A2 = self._operand()
        budget = MemoryBudget(bulk_peak * 0.7)
        plan = A2.plan_spgemm(A2, sr, budget)
        assert plan.phases > 1
        assert plan.fits
        assert plan.est_peak_bytes <= budget.limit_bytes
        C = A2.spgemm(A2, sr, budget=budget, plan=plan)
        assert world2.memory.peak_overall() <= budget.limit_bytes
        assert not budget.violations

        world3, A3 = self._operand()
        ref = A3.spgemm(A3, sr)
        assert_blocks_identical(C, ref)

    def test_budget_only_argument_plans_internally(self):
        world, A = self._operand()
        sr = arithmetic_semiring(np.int64)
        A.spgemm(A, sr)
        peak = world.memory.peak_overall()
        world2, A2 = self._operand()
        world2.memory.set_budget(MemoryBudget(peak * 0.7))
        A2.spgemm(A2, sr, budget=world2.memory.budget)
        assert world2.memory.peak_overall() <= peak * 0.7

    def test_impossible_budget_records_violations(self):
        world, A = self._operand()
        budget = MemoryBudget(10.0)  # bytes: nothing fits
        world.memory.set_budget(budget)
        plan = A.plan_spgemm(A, arithmetic_semiring(np.int64), budget)
        assert not plan.fits
        with world.stage_scope("Mult"):
            A.spgemm(A, arithmetic_semiring(np.int64), budget=budget, plan=plan)
        assert budget.violations
        assert budget.violated_stages() == ["Mult"]
        report = world.memory.budget_report()
        assert report["Mult"]["violations"] == len(
            [v for v in budget.violations if v.stage == "Mult"]
        )
        assert report["Mult"]["headroom_bytes"] == 0.0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        b = MemoryBudget.from_mb(2.0)
        assert b.limit_bytes == 2e6
        assert b.headroom(1.5e6) == pytest.approx(0.5e6)
        assert b.headroom(3e6) == 0.0
        assert MemoryBudget.from_mb(None).unlimited
        assert MemoryBudget(None).headroom() == float("inf")

    def test_meter_budget_attribution(self):
        meter = MemoryMeter(2)
        budget = MemoryBudget(100.0)
        meter.set_budget(budget)
        meter.observe(0, 50.0, stage="a")
        meter.observe(0, 150.0, stage="a")
        meter.observe(1, 120.0, stage="b")
        meter.observe(1, 110.0, stage="b")  # not a new high-water mark
        assert [(v.stage, v.rank, v.nbytes) for v in budget.violations] == [
            ("a", 0, 150.0),
            ("b", 1, 120.0),
        ]
        assert budget.violations[0].excess_bytes == 50.0
        assert budget.violated_stages() == ["a", "b"]
        assert meter.budget_report()["b"]["peak_bytes"] == 120.0


# ---------------------------------------------------------------------------
# graph + pipeline wiring
# ---------------------------------------------------------------------------


class TestGraphAndPipelineWiring:
    def test_transitive_reduction_budgeted_bit_identical(self, grid4):
        _rs, _store, R = build_R(grid4, stride=100)
        plain = transitive_reduction(R)
        assert plain.phases_per_round and set(plain.phases_per_round) == {1}

        world = SimWorld(4, cori_haswell())
        grid = ProcGrid(world)
        _rs, _store, R2 = build_R(grid, stride=100)
        peak = 1.0  # impossible headroom: planner maxes phases
        tr = transitive_reduction(R2, budget=MemoryBudget(peak))
        assert max(tr.phases_per_round) > 1
        assert_blocks_identical(tr.S, plain.S)
        assert tr.removed_per_round == plain.removed_per_round

    def test_transitive_reduction_observes_memory(self, grid4):
        """The edge-removal round reports its mark-matrix + join working
        set (it previously reported nothing)."""
        _rs, _store, R = build_R(grid4, stride=100)
        world = grid4.world
        with world.stage_scope("TrRemove"):
            result = transitive_reduction(R)
        assert result.total_removed > 0
        assert world.memory.stage_peak("TrRemove") > 0

    @pytest.fixture(scope="class")
    def readset(self):
        rng = np.random.default_rng(17)
        genome = dna.random_codes(rng, 3000)
        return tile_reads(genome, 200, 80)

    def test_pipeline_budget_bit_identical_and_fits(self, readset):
        base = run_pipeline(readset, PipelineConfig(nprocs=16, k=21))
        budget_mb = base.peak_memory_bytes * 0.6 / 1e6
        res = run_pipeline(
            readset,
            PipelineConfig(nprocs=16, k=21, memory_budget_mb=budget_mb),
        )
        assert res.counts.get("overlap_spgemm_phases", 1) > 1
        assert res.peak_memory_bytes <= budget_mb * 1e6
        assert res.counts["budget_violations"] == 0
        assert not res.budget_violations
        a = sorted(c.sequence() for c in base.contigs.contigs)
        b = sorted(c.sequence() for c in res.contigs.contigs)
        assert a == b

    def test_pipeline_impossible_budget_surfaces_violations(self, readset):
        res = run_pipeline(
            readset,
            PipelineConfig(nprocs=4, k=21, memory_budget_mb=1e-6),
        )
        assert res.counts["budget_violations"] > 0
        assert res.budget_violations
        stages = {v.stage for v in res.budget_violations}
        assert "DetectOverlap" in stages

    def test_budget_audit_survives_world_reuse(self, readset):
        """A reused world's stale meter high-water marks must not
        suppress a later run's violation records, and an earlier result's
        audit must not be rewritten by later runs."""
        from repro.pipeline import Pipeline
        from repro.seq import DistReadStore

        world = SimWorld(4, cori_haswell())
        grid = ProcGrid(world)
        store = DistReadStore.from_global(grid, readset.reads)
        pipe = Pipeline.default()
        pipe.run(store, PipelineConfig(nprocs=4, k=21))  # unbudgeted warm-up
        audited = pipe.run(
            store, PipelineConfig(nprocs=4, k=21, memory_budget_mb=1e-6)
        )
        assert audited.counts["budget_violations"] > 0
        n = len(audited.budget_violations)
        pipe.run(store, PipelineConfig(nprocs=4, k=21))  # budget-free run
        assert audited.memory_budget is not None
        assert len(audited.budget_violations) == n

    def test_memory_table_renders_budget(self, readset):
        from repro.pipeline import memory_table

        res = run_pipeline(
            readset, PipelineConfig(nprocs=4, k=21, memory_budget_mb=1e-6)
        )
        text = memory_table("demo", [res])
        assert "budget" in text and "violations" in text
        assert "DetectOverlap" in text

    def test_config_validation(self):
        with pytest.raises(PipelineError):
            PipelineConfig(nprocs=4, memory_budget_mb=-1).validate()
        assert PipelineConfig(nprocs=4).memory_budget() is None
        b = PipelineConfig(nprocs=4, memory_budget_mb=5.0).memory_budget()
        assert b is not None and b.limit_bytes == 5e6

    def test_budget_not_checkpoint_fingerprinted(self):
        """Identical results => the budget must not invalidate checkpoints."""
        from repro.pipeline import STAGE_REGISTRY

        cfg_a = PipelineConfig(nprocs=4)
        cfg_b = PipelineConfig(nprocs=4, memory_budget_mb=1.0)
        for name, cls in STAGE_REGISTRY.items():
            stage = cls()
            assert stage.config_signature(cfg_a) == stage.config_signature(
                cfg_b
            ), name

    def test_cli_flag_round_trip(self):
        import argparse

        from repro.cli.common import add_machine_arg, add_pipeline_args, build_pipeline_config

        parser = argparse.ArgumentParser()
        add_machine_arg(parser)
        add_pipeline_args(parser)
        args = parser.parse_args(["-P", "4", "--memory-budget-mb", "7.5"])
        cfg = build_pipeline_config(args)
        assert cfg.memory_budget_mb == 7.5
        cfg.validate()
        args = parser.parse_args(["-P", "4"])
        assert build_pipeline_config(args).memory_budget_mb is None
        with pytest.raises(SystemExit):
            parser.parse_args(["--memory-budget-mb", "-3"])
