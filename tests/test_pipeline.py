"""Unit tests for the end-to-end pipeline driver and its reports."""

import numpy as np
import pytest

from repro import MAIN_STAGES, PipelineConfig, run_pipeline
from repro.errors import PipelineError
from repro.pipeline import breakdown_table, parallel_efficiency, scaling_table
from repro.pipeline.report import ScalingPoint
from repro.seq import GenomeSpec, dna, make_genome, tile_reads


@pytest.fixture(scope="module")
def tiled():
    genome = make_genome(GenomeSpec(length=2500, seed=51))
    return genome, tile_reads(genome, 350, 140)


class TestConfig:
    def test_defaults_validate(self):
        PipelineConfig().validate()

    def test_non_square_nprocs_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(nprocs=6).validate()

    def test_bad_k_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(k=40).validate()

    def test_bad_mode_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(align_mode="fast").validate()

    def test_bad_partition_method_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(partition_method="best").validate()

    def test_inverted_reliable_band_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(reliable_lo=5, reliable_hi=2).validate()

    def test_reliable_band_accepts_equal_bounds(self):
        PipelineConfig(reliable_lo=2, reliable_hi=2).validate()

    def test_min_shared_kmers_below_one_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(min_shared_kmers=0).validate()

    def test_negative_xdrop_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(xdrop=-1).validate()

    def test_contig_engine_validated(self):
        with pytest.raises(PipelineError):
            PipelineConfig(contig_engine="simd").validate()
        PipelineConfig(contig_engine="scalar").validate()
        PipelineConfig(contig_engine="batch").validate()

    def test_align_batch_size_below_one_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(align_batch_size=0).validate()
        PipelineConfig(align_batch_size=1).validate()

    def test_negative_tr_fuzz_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(tr_fuzz=-1).validate()

    def test_machine_resolution(self):
        assert PipelineConfig(machine="summit-cpu").resolve_machine().name == "summit-cpu"
        with pytest.raises(PipelineError):
            PipelineConfig(machine="cray-1").resolve_machine()

    def test_machine_object_passthrough(self):
        from repro.mpi import cori_haswell

        m = cori_haswell().scaled(10)
        assert PipelineConfig(machine=m).resolve_machine() is m


class TestRunPipeline:
    def test_full_run_counts(self, tiled):
        genome, rs = tiled
        res = run_pipeline(rs, PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5))
        c = res.counts
        assert c["reads"] == rs.count
        assert c["reliable_kmers"] > 0
        assert c["A_nnz"] > 0
        assert c["C_nnz"] > 0
        assert c["R_nnz"] > 0
        assert c["S_nnz"] <= c["R_nnz"]
        assert c["contigs"] == 1

    def test_all_main_stages_timed(self, tiled):
        genome, rs = tiled
        res = run_pipeline(rs, PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5))
        breakdown = res.main_stage_breakdown()
        assert set(breakdown) == set(MAIN_STAGES)
        assert all(v >= 0 for v in breakdown.values())
        assert res.modeled_total > 0
        assert res.report.wall_seconds > 0

    def test_contig_substage_breakdown(self, tiled):
        genome, rs = tiled
        res = run_pipeline(rs, PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5))
        sub = res.contig_substage_breakdown()
        assert "InducedSubgraph" in sub and "LocalAssembly" in sub
        assert sum(sub.values()) == pytest.approx(
            res.stage_seconds("ExtractContig"), rel=1e-9
        )

    def test_accepts_raw_read_list(self, tiled):
        genome, rs = tiled
        res = run_pipeline(list(rs.reads), PipelineConfig(nprocs=1, k=17, reliable_lo=1, end_margin=5))
        assert res.contigs.count == 1

    def test_align_stats_exposed(self, tiled):
        genome, rs = tiled
        res = run_pipeline(rs, PipelineConfig(nprocs=4, k=17, reliable_lo=1, end_margin=5))
        assert res.align_stats.pairs_aligned > 0
        assert res.align_stats.dovetails > 0


class TestStageSeconds:
    """stage_seconds must match the exact name and '/'-substages only."""

    def _result(self, stage_seconds):
        from repro.mpi.stats import TimingReport
        from repro.pipeline import PipelineResult

        return PipelineResult(
            report=TimingReport(
                nprocs=1, machine="unit", stage_seconds=stage_seconds
            )
        )

    def test_prefix_sibling_not_absorbed(self):
        res = self._result(
            {"Alignment": 1.0, "AlignmentExtra": 10.0, "Alignment/band": 0.5}
        )
        assert res.stage_seconds("Alignment") == pytest.approx(1.5)

    def test_exact_name_plus_substages(self):
        res = self._result(
            {
                "ExtractContig": 0.25,
                "ExtractContig/InducedSubgraph": 1.0,
                "ExtractContig/LocalAssembly": 0.5,
                "ExtractContigAudit": 99.0,
            }
        )
        assert res.stage_seconds("ExtractContig") == pytest.approx(1.75)

    def test_missing_stage_is_zero(self):
        res = self._result({"CountKmer": 1.0})
        assert res.stage_seconds("Alignment") == 0.0


class TestReports:
    def _fake_results(self, tiled, ps=(1, 4)):
        genome, rs = tiled
        return [
            run_pipeline(rs, PipelineConfig(nprocs=p, k=17, reliable_lo=1, end_margin=5))
            for p in ps
        ]

    def test_scaling_table_renders(self, tiled):
        results = self._fake_results(tiled)
        text = scaling_table("unit-test", results)
        assert "P" in text and "efficiency" in text
        assert "unit-test" in text

    def test_breakdown_table_renders(self, tiled):
        results = self._fake_results(tiled)
        text = breakdown_table("unit-test", results)
        for stage in MAIN_STAGES:
            assert stage in text
        assert "InducedSubgraph" in text

    def test_parallel_efficiency_base_is_one(self):
        pts = [
            ScalingPoint(nprocs=1, modeled_seconds=8.0, wall_seconds=0),
            ScalingPoint(nprocs=4, modeled_seconds=2.5, wall_seconds=0),
        ]
        effs = parallel_efficiency(pts)
        assert effs[0] == pytest.approx(1.0)
        assert effs[1] == pytest.approx(8.0 / (2.5 * 4))

    def test_speedup(self):
        base = ScalingPoint(1, 8.0, 0.0)
        fast = ScalingPoint(4, 2.0, 0.0)
        assert fast.speedup_over(base) == pytest.approx(4.0)
