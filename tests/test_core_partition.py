"""Unit and property tests for greedy multiway number partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import connected_components, contig_sizes_distributed, multiway_partition, partition_contigs
from repro.errors import AssemblyError
from repro.sparse import DistSparseMatrix


def loads_of(sizes, assignment, nparts):
    return np.bincount(assignment, weights=sizes, minlength=nparts)


class TestMultiwayPartition:
    def test_lpt_simple(self):
        sizes = np.array([7, 5, 4, 3, 1])
        a = multiway_partition(sizes, 2, method="lpt")
        loads = loads_of(sizes, a, 2)
        assert loads.max() == 10  # optimum for this instance

    def test_lpt_bound(self):
        """LPT makespan <= (4/3 - 1/(3P)) * OPT; OPT >= max(mean, max)."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            nparts = int(rng.integers(2, 8))
            sizes = rng.integers(1, 100, size=int(rng.integers(1, 60)))
            a = multiway_partition(sizes, nparts, method="lpt")
            makespan = loads_of(sizes, a, nparts).max()
            opt_lb = max(sizes.sum() / nparts, sizes.max())
            assert makespan <= (4 / 3 - 1 / (3 * nparts)) * opt_lb + 1e-9

    def test_greedy_bound(self):
        """Unsorted greedy: makespan <= (2 - 1/P) * OPT."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            nparts = int(rng.integers(2, 8))
            sizes = rng.integers(1, 100, size=int(rng.integers(1, 60)))
            a = multiway_partition(sizes, nparts, method="greedy")
            makespan = loads_of(sizes, a, nparts).max()
            opt_lb = max(sizes.sum() / nparts, sizes.max())
            assert makespan <= (2 - 1 / nparts) * opt_lb + 1e-9

    def test_lpt_no_worse_than_round_robin(self):
        rng = np.random.default_rng(2)
        sizes = rng.integers(1, 1000, size=100)
        lpt = loads_of(sizes, multiway_partition(sizes, 8, "lpt"), 8).max()
        rr = loads_of(sizes, multiway_partition(sizes, 8, "round_robin"), 8).max()
        assert lpt <= rr

    def test_fewer_jobs_than_parts(self):
        """n < P: some parts stay idle (the paper notes this case)."""
        sizes = np.array([5, 3])
        a = multiway_partition(sizes, 8)
        loads = loads_of(sizes, a, 8)
        assert (loads > 0).sum() == 2

    def test_empty_input(self):
        assert multiway_partition(np.array([], dtype=np.int64), 4).size == 0

    def test_single_part(self):
        sizes = np.array([3, 1, 2])
        assert np.all(multiway_partition(sizes, 1) == 0)

    def test_invalid_inputs(self):
        with pytest.raises(AssemblyError):
            multiway_partition(np.array([1]), 0)
        with pytest.raises(AssemblyError):
            multiway_partition(np.array([-1]), 2)
        with pytest.raises(AssemblyError):
            multiway_partition(np.array([1]), 2, method="optimal")

    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=80),
        nparts=st.integers(1, 10),
        method=st.sampled_from(["lpt", "greedy", "round_robin"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_every_job_assigned_once(self, sizes, nparts, method):
        sizes = np.asarray(sizes, dtype=np.int64)
        a = multiway_partition(sizes, nparts, method=method)
        assert a.shape == sizes.shape
        assert np.all((a >= 0) & (a < nparts))
        assert loads_of(sizes, a, nparts).sum() == sizes.sum()


def chain_graph(grid, n, chains):
    rows, cols = [], []
    for chain in chains:
        for u, v in zip(chain, chain[1:]):
            rows += [u, v]
            cols += [v, u]
    return DistSparseMatrix.from_global_coo(
        grid, (n, n), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), np.ones(len(rows), dtype=np.int64),
    )


class TestPartitionContigs:
    def test_whole_contigs_share_a_rank(self, grid4):
        chains = [[0, 1, 2, 3], [4, 5], [6, 7, 8], [9, 10]]
        L = chain_graph(grid4, 11, chains)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels)
        p, result = partition_contigs(labels, sizes)
        p_global = p.to_global()
        for chain in chains:
            parts = {int(p_global[v]) for v in chain}
            assert len(parts) == 1
            assert parts.pop() >= 0

    def test_singletons_unassigned(self, grid4):
        chains = [[0, 1, 2]]
        L = chain_graph(grid4, 5, chains)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels)
        p, _ = partition_contigs(labels, sizes)
        p_global = p.to_global()
        assert p_global[3] == -1 and p_global[4] == -1

    def test_result_diagnostics(self, grid4):
        chains = [[0, 1, 2, 3, 4], [5, 6], [7, 8, 9]]
        L = chain_graph(grid4, 10, chains)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels)
        _, result = partition_contigs(labels, sizes)
        assert result.n_contigs == 3
        assert sorted(result.sizes.tolist()) == [2, 3, 5]
        assert result.makespan >= 3
        assert result.loads.sum() == 10
        assert result.imbalance >= 1.0

    def test_min_contig_reads_filters(self, grid4):
        chains = [[0, 1], [2, 3, 4]]
        L = chain_graph(grid4, 5, chains)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels)
        _, result = partition_contigs(labels, sizes, min_contig_reads=3)
        assert result.n_contigs == 1

    def test_broadcast_happens(self):
        """The paper: run the partitioner on one rank, broadcast p."""
        from repro.mpi import ProcGrid, SimWorld, cori_haswell

        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        L = chain_graph(g, 6, [[0, 1, 2], [3, 4, 5]])
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels)
        before = len(w.log)
        partition_contigs(labels, sizes)
        ops = [e.op for e in w.log.events[before:]]
        assert "bcast" in ops and "gather" in ops
