"""Integration tests: the whole pipeline under realistic conditions.

These are the tests that pin down the paper-level behaviour: exact genome
reconstruction from clean tilings (both strand patterns, all grid sizes),
high completeness on error-bearing sampled reads, branch masking on
repeat-bearing genomes, and agreement between distributed ELBA and the
serial baseline.
"""

import numpy as np
import pytest

from repro import PipelineConfig, run_pipeline
from repro.baselines import assemble_serial_olc
from repro.quality import evaluate_assembly
from repro.seq import GenomeSpec, dna, make_genome, sample_reads, tile_reads


def is_exact(contig_codes, genome):
    text = dna.decode(genome)
    s = dna.decode(contig_codes)
    return s in text or dna.revcomp_str(s) in text


class TestExactReconstruction:
    @pytest.mark.parametrize("pattern", ["forward", "alternate"])
    @pytest.mark.parametrize("nprocs", [1, 4, 9])
    def test_tiling_reassembles_exactly(self, pattern, nprocs):
        genome = make_genome(GenomeSpec(length=2800, seed=81))
        rs = tile_reads(genome, 380, 150, pattern)
        res = run_pipeline(
            rs, PipelineConfig(nprocs=nprocs, k=21, reliable_lo=1, end_margin=5)
        )
        assert res.contigs.count == 1
        contig = res.contigs.contigs[0]
        assert contig.length == genome.size
        assert is_exact(contig.codes, genome)

    def test_awkward_sizes(self):
        """Read/grid counts that do not divide evenly."""
        genome = make_genome(GenomeSpec(length=3107, seed=82))
        rs = tile_reads(genome, 389, 151)
        res = run_pipeline(
            rs, PipelineConfig(nprocs=16, k=21, reliable_lo=1, end_margin=5)
        )
        assert res.contigs.count == 1
        assert res.contigs.contigs[0].length == genome.size


class TestSampledReads:
    def test_error_free_sampling_high_completeness(self):
        genome = make_genome(GenomeSpec(length=5000, seed=83))
        rs = sample_reads(genome, depth=15, mean_length=450, rng=84, error_rate=0.0)
        res = run_pipeline(
            rs, PipelineConfig(nprocs=4, k=21, reliable_lo=2, end_margin=5)
        )
        report = evaluate_assembly(res.contigs.contigs, genome, k=21)
        assert report.completeness > 0.9
        assert report.misassemblies == 0

    def test_low_error_reads_assemble(self):
        """The paper's 0.5% HiFi-like regime (O. sativa / C. elegans)."""
        genome = make_genome(GenomeSpec(length=5000, seed=85))
        rs = sample_reads(
            genome, depth=20, mean_length=450, rng=86,
            error_rate=0.005, error_mix=(1.0, 0.0, 0.0),
        )
        res = run_pipeline(
            rs,
            PipelineConfig(
                nprocs=4, k=17, reliable_lo=2, xdrop=15, end_margin=25
            ),
        )
        report = evaluate_assembly(res.contigs.contigs, genome, k=17)
        assert report.completeness > 0.7
        assert res.contigs.count < rs.count / 4

    def test_indel_errors_with_dp_alignment(self):
        genome = make_genome(GenomeSpec(length=2500, seed=87))
        rs = sample_reads(
            genome, depth=15, mean_length=350, rng=88,
            error_rate=0.01, error_mix=(0.4, 0.3, 0.3),
        )
        res = run_pipeline(
            rs,
            PipelineConfig(
                nprocs=4, k=17, reliable_lo=2, align_mode="dp",
                xdrop=20, end_margin=30,
            ),
        )
        report = evaluate_assembly(res.contigs.contigs, genome, k=17)
        assert report.completeness > 0.5


class TestRepeats:
    def test_repeats_create_branches_and_are_masked(self):
        genome = make_genome(
            GenomeSpec(
                length=6000, n_repeats=2, repeat_length=400,
                repeat_copies=3, seed=89,
            )
        )
        rs = sample_reads(genome, depth=15, mean_length=500, rng=90, error_rate=0.0)
        res = run_pipeline(
            rs, PipelineConfig(nprocs=4, k=21, reliable_lo=2, end_margin=5)
        )
        # repeats should be detected as branches (or swallowed by reliable-
        # kmer filtering); assembly must stay non-chimeric either way
        report = evaluate_assembly(res.contigs.contigs, genome, k=21)
        assert report.misassemblies <= 1


class TestAgainstBaseline:
    def test_elba_matches_serial_olc_output(self):
        """Same paradigm, same substrate: the distributed pipeline and the
        serial baseline must produce equivalent assemblies on clean data."""
        genome = make_genome(GenomeSpec(length=3000, seed=91))
        rs = tile_reads(genome, 350, 140)
        res = run_pipeline(
            rs, PipelineConfig(nprocs=4, k=21, reliable_lo=1, end_margin=5)
        )
        baseline = assemble_serial_olc(list(rs.reads), k=21, end_margin=5)
        elba_seqs = {
            min(c.sequence(), dna.revcomp_str(c.sequence()))
            for c in res.contigs.contigs
        }
        base_seqs = {
            min(dna.decode(c), dna.revcomp_str(dna.decode(c)))
            for c in baseline.contigs
        }
        assert elba_seqs == base_seqs


class TestScalingBehaviour:
    def test_modeled_time_decreases_then_flattens(self):
        """Strong-scaling sanity: P=4 must beat P=1 on modeled time."""
        genome = make_genome(GenomeSpec(length=4000, seed=92))
        rs = tile_reads(genome, 400, 160)
        from repro.mpi import cori_haswell

        machine = cori_haswell().scaled(10_000)
        times = {}
        for p in (1, 4, 16):
            res = run_pipeline(
                rs,
                PipelineConfig(
                    nprocs=p, machine=machine, k=21, reliable_lo=1, end_margin=5
                ),
            )
            times[p] = res.modeled_total
        assert times[4] < times[1]

    def test_induced_subgraph_dominates_contig_phase(self):
        """§6.1: the induced subgraph function takes the bulk of contig
        generation; local assembly is a small fraction."""
        genome = make_genome(GenomeSpec(length=4000, seed=93))
        rs = tile_reads(genome, 400, 160)
        from repro.mpi import cori_haswell

        res = run_pipeline(
            rs,
            PipelineConfig(
                nprocs=16, machine=cori_haswell().scaled(10_000),
                k=21, reliable_lo=1, end_margin=5,
            ),
        )
        sub = res.contig_substage_breakdown()
        total = sum(sub.values())
        comm_stages = sub["InducedSubgraph"] + sub["ReadExchange"]
        assert comm_stages / total > 0.4
        assert sub["LocalAssembly"] / total < 0.3
