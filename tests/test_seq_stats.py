"""Tests for read-set statistics and the k-mer spectrum depth estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import (
    dna,
    estimate_depth,
    kmer_spectrum,
    read_stats,
    sample_reads,
    tile_reads,
)


def genome_of(length, seed=0):
    return dna.random_codes(np.random.default_rng(seed), length)


class TestReadStats:
    def test_fixed_length_tiling(self):
        g = genome_of(2000, seed=1)
        rs = tile_reads(g, 200, 100)
        st_ = read_stats(rs, genome_length=2000)
        assert st_.n_reads == len(rs.reads)
        assert st_.min_length == st_.max_length == 200
        assert st_.read_n50 == 200
        assert st_.mean_length == 200.0
        assert st_.total_bases == 200 * st_.n_reads
        assert st_.depth == pytest.approx(st_.total_bases / 2000)

    def test_gc_content_extremes(self):
        all_at = [np.array([0, 3, 0, 3], dtype=np.uint8)]  # A/T only
        all_gc = [np.array([1, 2, 1, 2], dtype=np.uint8)]  # C/G only
        assert read_stats(all_at).gc_content == 0.0
        assert read_stats(all_gc).gc_content == 1.0

    def test_empty_read_set(self):
        st_ = read_stats([])
        assert st_.n_reads == 0
        assert st_.total_bases == 0
        assert st_.read_n50 == 0

    def test_n50_definition(self):
        # lengths 1..9 + 10: total 55, half 27.5; sorted desc cumsum
        # 10,19,27,34 -> N50 = 7
        reads = [np.zeros(n, dtype=np.uint8) for n in list(range(1, 10)) + [10]]
        assert read_stats(reads).read_n50 == 7

    def test_histogram_covers_all_reads(self):
        g = genome_of(3000, seed=2)
        rs = sample_reads(g, depth=5, mean_length=200, rng=3)
        st_ = read_stats(rs)
        assert sum(st_.length_histogram.values()) == st_.n_reads

    def test_render_mentions_core_fields(self):
        g = genome_of(1000, seed=3)
        text = read_stats(tile_reads(g, 100, 50), genome_length=1000).render()
        for token in ("reads:", "N50", "GC content", "depth"):
            assert token in text

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, seed):
        g = genome_of(1500, seed=seed)
        rs = sample_reads(g, depth=4, mean_length=150, rng=seed)
        stats = read_stats(rs)
        assert stats.min_length <= stats.mean_length <= stats.max_length
        assert stats.min_length <= stats.read_n50 <= stats.max_length
        assert 0.0 <= stats.gc_content <= 1.0


class TestKmerSpectrum:
    def test_unique_genome_spectrum_peaks_at_depth(self):
        """An exact tiling at depth d puts most genomic k-mers at
        multiplicity ~d: the estimator must land near d."""
        g = genome_of(4000, seed=4)
        rs = tile_reads(g, 400, 100)  # 4x depth
        spec = kmer_spectrum(rs, 21)
        assert estimate_depth(spec) == pytest.approx(4, abs=1)

    def test_errors_pile_up_at_multiplicity_one(self):
        g = genome_of(3000, seed=5)
        clean = tile_reads(g, 300, 100)
        noisy = sample_reads(
            g, depth=3, mean_length=300, rng=6,
            error_rate=0.02, error_mix=(1.0, 0.0, 0.0),
        )
        spec_clean = kmer_spectrum(clean, 21)
        spec_noisy = kmer_spectrum(noisy, 21)
        assert spec_noisy[1] > spec_clean[1]

    def test_spectrum_mass_equals_distinct_kmers(self):
        g = genome_of(1000, seed=7)
        rs = tile_reads(g, 200, 100)
        spec = kmer_spectrum(rs, 15)
        from repro.kmer.codec import canonical_kmers, encode_kmers

        all_canon = np.concatenate(
            [canonical_kmers(encode_kmers(r, 15), 15)[0] for r in rs.reads]
        )
        assert spec.sum() == np.unique(all_canon).size

    def test_multiplicity_cap(self):
        reads = [np.zeros(100, dtype=np.uint8) for _ in range(5)]  # poly-A
        spec = kmer_spectrum(reads, 11, max_multiplicity=8)
        assert spec[8] == 1  # the single distinct k-mer, capped at 8
        assert spec.sum() == 1

    def test_empty_and_short_reads(self):
        assert kmer_spectrum([], 21).sum() == 0
        assert kmer_spectrum([np.zeros(5, dtype=np.uint8)], 21).sum() == 0

    def test_estimate_depth_degenerate(self):
        assert estimate_depth(np.zeros(3, dtype=np.int64)) == 0.0
        assert estimate_depth(np.array([0, 10], dtype=np.int64)) == 0.0
