"""Job-engine smoke: a SIGKILLed worker's job resumes bit-identically.

This is the scenario the CI job-engine step runs: a worker process is
hard-killed mid-job (no atexit, no cleanup), the job's lease expires, a
fresh worker adopts the orphaned record, and the shared artifact cache
turns the re-run into cache hits for everything checkpointed before the
kill -- converging on a result bit-identical to an uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import KILL_AFTER_ENV, JobService

SRC = {
    "kind": "simulate",
    "length": 2500,
    "seed": 51,
    "read_length": 350,
    "stride": 140,
}
CFG = {"nprocs": 4, "k": 17, "reliable_lo": 1, "end_margin": 5}

LEASE_TTL = 0.5

WORKER_DRIVER = (
    "import sys\n"
    "from repro.service import JobService\n"
    f"JobService(sys.argv[1], lease_ttl={LEASE_TTL}).run_worker()\n"
)

#: fields of the job summary that must be bit-identical across resume
IDENTITY_FIELDS = ("contigs", "total_bases", "longest", "contig_digest")


def _spawn_worker(root, kill_after=None):
    env = dict(os.environ)
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
    if kill_after is not None:
        env[KILL_AFTER_ENV] = kill_after
    else:
        env.pop(KILL_AFTER_ENV, None)
    return subprocess.run(
        [sys.executable, "-c", WORKER_DRIVER, str(root)],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)
class TestKillAndResumeSmoke:
    def test_sigkilled_worker_resumes_bit_identical(self, tmp_path):
        # reference: the same job on a pristine root, never interrupted
        ref = JobService(tmp_path / "ref")
        ref_summary = None
        ref_id = ref.submit(SRC, CFG)
        ref.run_worker()
        ref_summary = ref.result(ref_id)

        svc = JobService(tmp_path / "svc", lease_ttl=LEASE_TTL)
        job_id = svc.submit(SRC, CFG)

        # a worker process that SIGKILLs itself right after Alignment
        # completes -- before that stage's checkpoint is written
        proc = _spawn_worker(tmp_path / "svc", kill_after="Alignment")
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        orphan = svc.status(job_id)
        assert orphan.state == "running"  # torn mid-flight, lease held
        assert orphan.progress["Alignment"] == "done"
        assert orphan.attempts == 1
        # upstream stages were checkpointed (and pinned) before the kill
        cached_stages = {p.name.split("-")[0] for p in svc.cache.entries()}
        assert cached_stages == {"CountKmer", "DetectOverlap"}
        assert len(svc.cache.pinned_files()) == 2

        # until the lease expires nobody may steal the job
        assert svc.store.claim_next("vulture") is None
        time.sleep(LEASE_TTL + 0.2)

        # a fresh worker (fresh process, like a restarted service) adopts
        proc = _spawn_worker(tmp_path / "svc")
        assert proc.returncode == 0, proc.stderr

        record = svc.status(job_id)
        assert record.state == "done"
        assert record.attempts == 2
        summary = svc.result(job_id)
        # CountKmer + DetectOverlap came from cache; Alignment (whose
        # checkpoint the kill beat to disk) was recomputed
        assert summary["stages_cached"] == 2
        assert summary["stages_run"] == [
            "Alignment", "TrReduction", "ExtractContig",
        ]
        for field in IDENTITY_FIELDS:
            assert summary[field] == ref_summary[field], field
        # artifact-derived counters are restored from checkpoints and must
        # match; peak modeled memory is a per-run property (the resumed
        # run only executed three stages) and is legitimately smaller
        drop = {"peak_memory_bytes"}
        assert {k: v for k, v in summary["counts"].items() if k not in drop} \
            == {k: v for k, v in ref_summary["counts"].items() if k not in drop}
        # terminal job released its pins
        assert svc.cache.pinned_files() == set()
        events = [e["event"] for e in svc.events(job_id)]
        assert "claimed" in events and "adopted" in events

    def test_two_knob_sweep_jobs_share_cache_across_processes(self, tmp_path):
        """The CI assertion: two knob-sweep jobs, one cache root, the
        second job's upstream stages all served from the first's cache --
        each job run by a separate worker process."""
        svc = JobService(tmp_path)
        a = svc.submit(SRC, CFG, owner="alice")
        b = svc.submit(SRC, {**CFG, "partition_method": "greedy"},
                       owner="bob")
        for _ in (a, b):
            proc = _spawn_worker(tmp_path)
            assert proc.returncode == 0, proc.stderr
            # each driver call drains the whole queue; second is idle
        ra, rb = svc.result(a), svc.result(b)
        assert rb["stages_cached"] == 4
        assert ra["contig_digest"] is not None
        assert ra["total_bases"] == rb["total_bases"]
