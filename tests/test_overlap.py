"""Unit tests for overlap detection (C = A.A^T) and the alignment filter."""

import numpy as np
import pytest

from repro.kmer import build_kmer_matrix, count_kmers
from repro.overlap import AlignmentParams, build_overlap_graph, detect_overlaps
from repro.seq import DistReadStore, GenomeSpec, dna, make_genome, tile_reads
from repro.sparse.types import OVERLAP_DTYPE, SEED_DTYPE


def overlap_setup(grid, genome_len=2000, read_len=300, stride=120, k=15, pattern="forward"):
    genome = make_genome(GenomeSpec(length=genome_len, seed=21))
    rs = tile_reads(genome, read_len, stride, pattern)
    store = DistReadStore.from_global(grid, rs.reads)
    table = count_kmers(store, k, reliable_lo=1)
    A = build_kmer_matrix(store, table)
    return genome, rs, store, A


class TestDetect:
    def test_candidate_pairs_match_true_overlaps(self, grid4):
        genome, rs, store, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        assert C.dtype == SEED_DTYPE
        rows, cols, vals = C.to_global_coo()
        # neighbors in the tiling share 180bp => many kmers
        n = store.nreads
        pair_set = set(zip(rows.tolist(), cols.tolist()))
        for i in range(n - 1):
            assert (i, i + 1) in pair_set, f"missing adjacent pair {i}"
        # no self-overlaps
        assert all(r != c for r, c in pair_set)

    def test_pattern_symmetric(self, grid4):
        _, _, _, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        rows, cols, _ = C.to_global_coo()
        pairs = set(zip(rows.tolist(), cols.tolist()))
        assert all((c, r) in pairs for r, c in pairs)

    def test_min_shared_prunes(self, grid4):
        _, _, _, A = overlap_setup(grid4)
        loose, _ = detect_overlaps(A, min_shared=1)
        strict, _ = detect_overlaps(A, min_shared=50)
        assert strict.nnz() < loose.nnz()

    def test_seed_counts_positive(self, grid4):
        _, _, _, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        _, _, vals = C.to_global_coo()
        assert np.all(vals["count"] >= 1)

    def test_opposite_strand_seeds_flagged(self, grid4):
        genome, rs, store, A = overlap_setup(grid4, pattern="alternate")
        C, _ = detect_overlaps(A)
        _, _, vals = C.to_global_coo()
        # alternate tiling: adjacent overlaps are opposite-strand
        assert np.any(vals["same_strand"] == 0)
        assert np.any(vals["same_strand"] == 1)


class TestBuildOverlapGraph:
    def test_r_is_symmetric_with_mirrored_payloads(self, grid4):
        genome, rs, store, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        R, stats = build_overlap_graph(
            C, store, AlignmentParams(k=15, end_margin=5)
        )
        assert R.dtype == OVERLAP_DTYPE
        rows, cols, vals = R.to_global_coo()
        index = {(int(r), int(c)): v for r, c, v in zip(rows, cols, vals)}
        from repro.strgraph import mirror_direction

        for (r, c), v in index.items():
            assert (c, r) in index, f"missing mirror of ({r}, {c})"
            assert index[(c, r)]["dir"] == mirror_direction(int(v["dir"]))

    def test_stats_accounting(self, grid4):
        genome, rs, store, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        _, stats = build_overlap_graph(C, store, AlignmentParams(k=15, end_margin=5))
        assert stats.pairs_aligned == C.nnz() // 2
        assert stats.dovetails > 0
        assert (
            stats.dovetails + stats.contained + stats.internal + stats.low_score
            == stats.pairs_aligned
        )

    def test_min_score_prunes_everything_when_absurd(self, grid4):
        genome, rs, store, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        R, stats = build_overlap_graph(
            C, store, AlignmentParams(k=15, min_score=10**9)
        )
        assert R.nnz() == 0
        assert stats.low_score == stats.pairs_aligned

    def test_contained_reads_removed(self, grid4):
        # one read fully inside another
        genome = make_genome(GenomeSpec(length=800, seed=5))
        reads = [genome[0:400], genome[100:250], genome[300:700]]
        store = DistReadStore.from_global(grid4, reads)
        table = count_kmers(store, 15, reliable_lo=1)
        A = build_kmer_matrix(store, table)
        C, _ = detect_overlaps(A)
        R, stats = build_overlap_graph(C, store, AlignmentParams(k=15, end_margin=5))
        assert stats.contained_reads >= 1
        rows, cols, _ = R.to_global_coo()
        assert 1 not in set(rows.tolist()) | set(cols.tolist())

    def test_suffix_values_sane(self, grid4):
        genome, rs, store, A = overlap_setup(grid4)
        C, _ = detect_overlaps(A)
        R, _ = build_overlap_graph(C, store, AlignmentParams(k=15, end_margin=5))
        _, _, vals = R.to_global_coo()
        assert np.all(vals["suffix"] >= 0)
        assert np.all(vals["suffix"] <= 300)  # bounded by read length

    @pytest.mark.parametrize("mode", ["diag", "dp"])
    def test_result_invariant_to_batch_size(self, grid4, mode):
        """R and the stats must not depend on the kernel chunking."""
        genome, rs, store, A = overlap_setup(
            grid4, pattern="alternate", genome_len=1500, stride=150
        )
        C, _ = detect_overlaps(A)
        results = []
        for batch_size in (1, 7, 10**6):
            R, stats = build_overlap_graph(
                C,
                store,
                AlignmentParams(k=15, mode=mode, end_margin=5, batch_size=batch_size),
            )
            results.append((R.to_global_coo(), stats))
        (rows0, cols0, vals0), stats0 = results[0]
        for (rows, cols, vals), stats in results[1:]:
            assert np.array_equal(rows, rows0)
            assert np.array_equal(cols, cols0)
            assert np.array_equal(vals, vals0)
            assert stats.per_kind == stats0.per_kind
            assert np.array_equal(stats.contained_ids, stats0.contained_ids)

    def test_contained_ids_sorted_unique(self, grid4):
        genome = make_genome(GenomeSpec(length=800, seed=5))
        reads = [genome[0:400], genome[100:250], genome[300:700]]
        store = DistReadStore.from_global(grid4, reads)
        table = count_kmers(store, 15, reliable_lo=1)
        A = build_kmer_matrix(store, table)
        C, _ = detect_overlaps(A)
        _, stats = build_overlap_graph(C, store, AlignmentParams(k=15, end_margin=5))
        ids = stats.contained_ids
        assert ids.dtype == np.int64
        assert np.array_equal(ids, np.unique(ids))
