"""Unit tests for the FASTA reader/writer."""

import io

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import dna, iter_fasta, load_distributed, read_fasta, write_fasta


class TestReader:
    def test_basic_parse(self):
        text = ">r1 desc\nACGT\n>r2\nTT\nGG\n"
        headers, seqs = read_fasta(io.StringIO(text))
        assert headers == ["r1 desc", "r2"]
        assert dna.decode(seqs[0]) == "ACGT"
        assert dna.decode(seqs[1]) == "TTGG"

    def test_blank_lines_ignored(self):
        text = ">a\n\nAC\n\nGT\n"
        _, seqs = read_fasta(io.StringIO(text))
        assert dna.decode(seqs[0]) == "ACGT"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(SequenceError):
            list(iter_fasta(io.StringIO("ACGT\n>late\nAC\n")))

    def test_empty_input(self):
        headers, seqs = read_fasta(io.StringIO(""))
        assert headers == [] and seqs == []

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "reads.fa"
        write_fasta(path, [("x", "ACGTACGT"), ("y", np.array([0, 1], dtype=np.uint8))])
        headers, seqs = read_fasta(path)
        assert headers == ["x", "y"]
        assert dna.decode(seqs[0]) == "ACGTACGT"
        assert dna.decode(seqs[1]) == "AC"


class TestWriter:
    def test_line_wrapping(self):
        buf = io.StringIO()
        write_fasta(buf, [("r", "A" * 25)], width=10)
        lines = buf.getvalue().strip().split("\n")
        assert lines[0] == ">r"
        assert [len(x) for x in lines[1:]] == [10, 10, 5]


class TestLoadDistributed:
    def test_from_text(self, grid4):
        text = ">a\nACGT\n>b\nTTTT\n>c\nGGGG\n>d\nCCCC\n>e\nAAAA\n"
        store = load_distributed(grid4, text)
        assert store.nreads == 5
        assert dna.decode(store.codes_global(1)) == "TTTT"

    def test_from_path(self, grid4, tmp_path):
        path = tmp_path / "in.fa"
        write_fasta(path, [(f"r{i}", "ACGT") for i in range(6)])
        store = load_distributed(grid4, path)
        assert store.nreads == 6
