"""Unit tests for the MPI count-limit emulation (contiguous datatype trick)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MPI_COUNT_LIMIT, chunk_buffer, plan_transfer, reassemble


class TestPlanTransfer:
    def test_small_buffer_plain_send(self):
        plan = plan_transfer(1000)
        assert plan.method == "single"
        assert plan.count == 1000
        assert plan.type_size == 1
        assert plan.messages == 1

    def test_exactly_at_limit_stays_plain(self):
        plan = plan_transfer(MPI_COUNT_LIMIT)
        assert plan.method == "single"

    def test_over_limit_uses_contiguous_datatype(self):
        """The paper's workaround: one send of count=1 with a user-defined
        contiguous datatype the size of the whole buffer."""
        nbytes = MPI_COUNT_LIMIT + 12345
        plan = plan_transfer(nbytes)
        assert plan.method == "contiguous-datatype"
        assert plan.count == 1
        assert plan.type_size == nbytes
        assert plan.messages == 1

    def test_byte_volume_preserved_either_way(self):
        for nbytes in (0, 1, 100, MPI_COUNT_LIMIT, MPI_COUNT_LIMIT + 1):
            assert plan_transfer(nbytes).nbytes == nbytes

    def test_injectable_limit(self):
        plan = plan_transfer(100, limit=64)
        assert plan.method == "contiguous-datatype"
        assert plan.nbytes == 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_transfer(-1)
        with pytest.raises(ValueError):
            plan_transfer(10, limit=0)


class TestChunking:
    def test_chunks_are_views(self):
        buf = np.arange(100, dtype=np.uint8)
        chunks = chunk_buffer(buf, limit=30)
        assert len(chunks) == 4
        assert chunks[0].base is buf

    def test_roundtrip_identity(self):
        buf = np.arange(256, dtype=np.uint8)
        assert np.array_equal(reassemble(chunk_buffer(buf, limit=7)), buf)

    def test_empty_buffer(self):
        assert chunk_buffer(np.empty(0, dtype=np.uint8), limit=5) == []
        assert reassemble([]).size == 0

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            chunk_buffer(np.zeros(4, dtype=np.int32), limit=2)

    @given(
        n=st.integers(min_value=0, max_value=2000),
        limit=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_chunk_reassemble_identity(self, n, limit):
        buf = (np.arange(n) % 251).astype(np.uint8)
        chunks = chunk_buffer(buf, limit=limit)
        assert all(c.size <= limit for c in chunks)
        assert np.array_equal(reassemble(chunks), buf)
