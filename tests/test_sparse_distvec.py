"""Unit tests for the distributed vector."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.mpi import ProcGrid, SimWorld, cori_haswell, zero_cost
from repro.sparse import DistVector


class TestLayout:
    def test_from_global_roundtrip(self, grid):
        arr = np.arange(29)
        v = DistVector.from_global(grid, arr)
        assert np.array_equal(v.to_global(), arr)

    def test_blocks_match_grid_layout(self, grid):
        arr = np.arange(31)
        v = DistVector.from_global(grid, arr)
        for rank, blk in enumerate(v.blocks):
            lo, hi = grid.vec_block(31, rank)
            assert np.array_equal(blk, arr[lo:hi])

    def test_constructors(self, grid4):
        z = DistVector.zeros(grid4, 10)
        assert np.all(z.to_global() == 0)
        f = DistVector.full(grid4, 10, 7, np.int32)
        assert np.all(f.to_global() == 7)
        a = DistVector.arange(grid4, 10)
        assert np.array_equal(a.to_global(), np.arange(10))

    def test_bad_block_sizes_rejected(self, grid4):
        with pytest.raises(DistributionError):
            DistVector(grid4, 10, [np.zeros(10)] * 4)

    def test_copy_independent(self, grid4):
        v = DistVector.arange(grid4, 8)
        c = v.copy()
        c.blocks[0][:] = -1
        assert np.array_equal(v.to_global(), np.arange(8))


class TestMapReduceSelect:
    def test_map_receives_global_indices(self, grid4):
        v = DistVector.zeros(grid4, 12)
        out = v.map(lambda blk, idx: idx * 2)
        assert np.array_equal(out.to_global(), np.arange(12) * 2)

    def test_reduce(self, grid4):
        v = DistVector.from_global(grid4, np.arange(10))
        total = v.reduce(lambda b: int(b.sum()), lambda a, b: a + b)
        assert total == 45

    def test_select_global_indices(self, grid4):
        arr = np.array([0, 5, 1, 7, 2, 9, 3, 8, 4, 6])
        v = DistVector.from_global(grid4, arr)
        selected = v.select_global_indices(lambda b: b >= 5)
        got = np.sort(np.concatenate(selected))
        assert np.array_equal(got, np.sort(np.flatnonzero(arr >= 5)))


class TestGather:
    def test_gather_returns_request_order(self, grid):
        n = 37
        arr = np.arange(n) * 10
        v = DistVector.from_global(grid, arr)
        rng = np.random.default_rng(0)
        requests = [
            rng.integers(0, n, size=rng.integers(0, 20))
            for _ in range(grid.nprocs)
        ]
        answers = v.gather(requests)
        for req, ans in zip(requests, answers):
            assert np.array_equal(ans, arr[req])

    def test_gather_empty_requests(self, grid4):
        v = DistVector.arange(grid4, 10)
        answers = v.gather([np.empty(0, dtype=np.int64)] * 4)
        assert all(a.size == 0 for a in answers)

    def test_gather_out_of_range(self, grid4):
        v = DistVector.arange(grid4, 10)
        with pytest.raises(DistributionError):
            v.gather([np.array([10])] + [np.empty(0, dtype=np.int64)] * 3)

    def test_gather_charges_communication(self):
        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        v = DistVector.arange(g, 100)
        v.gather([np.arange(50)] * 4)
        assert w.log.total_bytes(op="alltoallv") > 0


class TestScatterUpdate:
    def test_overwrite(self, grid4):
        v = DistVector.zeros(grid4, 10)
        v.scatter_update(
            [np.array([1, 9]), np.array([3]), np.empty(0, np.int64), np.empty(0, np.int64)],
            [np.array([11, 99]), np.array([33]), np.empty(0, np.int64), np.empty(0, np.int64)],
        )
        out = v.to_global()
        assert out[1] == 11 and out[9] == 99 and out[3] == 33

    def test_min_combine(self, grid4):
        v = DistVector.full(grid4, 6, 100, np.int64)
        idx = [np.array([2]), np.array([2]), np.empty(0, np.int64), np.empty(0, np.int64)]
        val = [np.array([50]), np.array([30]), np.empty(0, np.int64), np.empty(0, np.int64)]
        v.scatter_update(idx, val, combine="min")
        assert v.to_global()[2] == 30

    def test_add_combine(self, grid4):
        v = DistVector.zeros(grid4, 6)
        idx = [np.array([2, 2]), np.empty(0, np.int64), np.empty(0, np.int64), np.array([2])]
        val = [np.array([1, 2]), np.empty(0, np.int64), np.empty(0, np.int64), np.array([4])]
        v.scatter_update(idx, val, combine="add")
        assert v.to_global()[2] == 7

    def test_unknown_combine(self, grid4):
        v = DistVector.zeros(grid4, 6)
        with pytest.raises(ValueError):
            v.scatter_update(
                [np.array([0])] + [np.empty(0, np.int64)] * 3,
                [np.array([1])] + [np.empty(0, np.int64)] * 3,
                combine="xor",
            )

    def test_length_mismatch(self, grid4):
        v = DistVector.zeros(grid4, 6)
        with pytest.raises(DistributionError):
            v.scatter_update(
                [np.array([0, 1])] + [np.empty(0, np.int64)] * 3,
                [np.array([1])] + [np.empty(0, np.int64)] * 3,
            )
