"""Unit tests for the crash-safe job store (repro.service.store)."""

import json

import pytest

from repro.service import (
    JobError,
    JobRecord,
    JobSpec,
    JobStore,
    runnable_order,
)

SRC = {"kind": "simulate", "length": 2000, "seed": 1}


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path, clock):
    return JobStore(tmp_path, lease_ttl=10.0, clock=clock)


class TestSubmitAndRecords:
    def test_submit_assigns_sequential_ids(self, store):
        a = store.submit(JobSpec(source=SRC))
        b = store.submit(JobSpec(source=SRC))
        assert (a.job_id, b.job_id) == ("j00001", "j00002")
        assert a.state == "queued" and a.seq == 1 and b.seq == 2

    def test_round_trip_preserves_spec(self, store):
        spec = JobSpec(
            source=SRC, config={"k": 17, "nprocs": 4}, until="Alignment",
            name="sweep-a",
        )
        job_id = store.submit(spec, owner="alice", priority=3).job_id
        got = store.get(job_id)
        assert got.spec == spec
        assert got.owner == "alice" and got.priority == 3

    def test_get_unknown_job_raises(self, store):
        with pytest.raises(JobError):
            store.get("j99999")

    def test_corrupt_record_raises_joberror(self, store):
        job_id = store.submit(JobSpec(source=SRC)).job_id
        store.record_path(job_id).write_text("{ torn")
        with pytest.raises(JobError):
            store.get(job_id)

    def test_save_is_atomic_no_tmp_left(self, store):
        record = store.submit(JobSpec(source=SRC))
        store.save(record)
        assert not list(store.root.glob("*.tmp"))

    def test_list_filters_state_and_owner(self, store):
        a = store.submit(JobSpec(source=SRC), owner="alice")
        store.submit(JobSpec(source=SRC), owner="bob")
        store.finish(a, "done")
        assert [r.job_id for r in store.list_jobs(state="done")] == [a.job_id]
        assert [r.owner for r in store.list_jobs(owner="bob")] == ["bob"]

    def test_list_skips_torn_records(self, store):
        store.submit(JobSpec(source=SRC))
        (store.root / "j00002.json").write_text("not json")
        assert len(store.list_jobs()) == 1


class TestClaiming:
    def test_priority_then_fifo(self, store):
        low = store.submit(JobSpec(source=SRC), priority=0)
        hi = store.submit(JobSpec(source=SRC), priority=9)
        low2 = store.submit(JobSpec(source=SRC), priority=0)
        order = [store.claim_next("w").job_id for _ in range(3)]
        assert order == [hi.job_id, low.job_id, low2.job_id]

    def test_claim_stamps_lease_and_attempts(self, store, clock):
        store.submit(JobSpec(source=SRC))
        record = store.claim_next("w1")
        assert record.state == "running" and record.attempts == 1
        assert record.lease["worker"] == "w1"
        assert record.lease["expires"] == clock.now + 10.0

    def test_live_lease_not_adoptable(self, store):
        store.submit(JobSpec(source=SRC))
        assert store.claim_next("w1") is not None
        assert store.claim_next("w2") is None

    def test_expired_lease_adopted_with_attempt_bump(self, store, clock):
        store.submit(JobSpec(source=SRC))
        first = store.claim_next("w1")
        clock.advance(11.0)
        adopted = store.claim_next("w2")
        assert adopted.job_id == first.job_id
        assert adopted.attempts == 2
        assert adopted.lease["worker"] == "w2"
        events = [e["event"] for e in store.events(first.job_id)]
        assert "adopted" in events

    def test_heartbeat_extends_lease(self, store, clock):
        store.submit(JobSpec(source=SRC))
        record = store.claim_next("w1")
        clock.advance(8.0)
        store.heartbeat(record)
        clock.advance(8.0)  # 16s total, but lease renewed at t+8
        assert store.claim_next("w2") is None

    def test_empty_queue_returns_none(self, store):
        assert store.claim_next("w") is None

    def test_runnable_order_pure(self, clock):
        r1 = JobRecord(job_id="a", spec=JobSpec(source=SRC), seq=1)
        r2 = JobRecord(job_id="b", spec=JobSpec(source=SRC), seq=2, priority=5)
        stale = JobRecord(
            job_id="c", spec=JobSpec(source=SRC), seq=3, state="running",
            lease={"worker": "w", "token": "t", "expires": clock.now - 1},
        )
        done = JobRecord(
            job_id="d", spec=JobSpec(source=SRC), seq=4, state="done",
        )
        ordered = runnable_order([r1, r2, stale, done], clock.now)
        assert [r.job_id for r in ordered] == ["b", "a", "c"]


class TestCancelAndFinish:
    def test_cancel_queued_is_immediate(self, store):
        job_id = store.submit(JobSpec(source=SRC)).job_id
        assert store.request_cancel(job_id).state == "cancelled"
        assert store.claim_next("w") is None

    def test_cancel_running_sets_flag_only(self, store):
        store.submit(JobSpec(source=SRC))
        record = store.claim_next("w")
        flagged = store.request_cancel(record.job_id)
        assert flagged.state == "running" and flagged.cancel_requested

    def test_cancel_terminal_is_noop(self, store):
        a = store.submit(JobSpec(source=SRC))
        store.finish(a, "done")
        assert store.request_cancel(a.job_id).state == "done"

    def test_finish_rejects_non_terminal_state(self, store):
        a = store.submit(JobSpec(source=SRC))
        with pytest.raises(JobError):
            store.finish(a, "queued")

    def test_finish_drops_lease_and_stamps_time(self, store, clock):
        store.submit(JobSpec(source=SRC))
        record = store.claim_next("w")
        done = store.finish(record, "done", summary={"contigs": 1})
        assert done.lease is None
        assert done.finished_at == clock.now
        assert store.get(done.job_id).summary == {"contigs": 1}

    def test_requeue_orphans(self, store, clock):
        store.submit(JobSpec(source=SRC))
        record = store.claim_next("w1")
        assert store.requeue_orphans() == []  # lease still live
        clock.advance(11.0)
        requeued = store.requeue_orphans()
        assert [r.job_id for r in requeued] == [record.job_id]
        assert store.get(record.job_id).state == "queued"


class TestEvents:
    def test_submit_and_lifecycle_events(self, store):
        a = store.submit(JobSpec(source=SRC))
        store.claim_next("w")
        store.finish(store.get(a.job_id), "done")
        kinds = [e["event"] for e in store.events(a.job_id)]
        assert kinds == ["submitted", "claimed", "done"]

    def test_since_offset(self, store):
        a = store.submit(JobSpec(source=SRC))
        store.append_event(a.job_id, "x")
        assert [e["event"] for e in store.events(a.job_id, since=1)] == ["x"]

    def test_torn_trailing_line_skipped(self, store):
        a = store.submit(JobSpec(source=SRC))
        with open(store.events_path(a.job_id), "a") as fh:
            fh.write('{"event": "torn...')
        assert [e["event"] for e in store.events(a.job_id)] == ["submitted"]

    def test_events_of_unlogged_job_empty(self, store):
        assert store.events("j00042") == []

    def test_event_lines_are_json(self, store):
        a = store.submit(JobSpec(source=SRC), owner="alice", priority=2)
        lines = store.events_path(a.job_id).read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["owner"] == "alice" and parsed[0]["priority"] == 2
