"""Unit tests for distributed connected components against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.core import connected_components, contig_sizes_distributed
from repro.sparse import DistSparseMatrix


def dist_graph(grid, n, edges, dtype=np.int64):
    rows, cols = [], []
    for u, v in edges:
        rows += [u, v]
        cols += [v, u]
    return DistSparseMatrix.from_global_coo(
        grid, (n, n), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), np.ones(len(rows), dtype=dtype),
    )


def nx_labels(n, edges):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    labels = np.empty(n, dtype=np.int64)
    for comp in nx.connected_components(g):
        root = min(comp)
        for v in comp:
            labels[v] = root
    return labels


class TestConnectedComponents:
    def test_single_path(self, grid):
        n = 20
        edges = [(i, i + 1) for i in range(n - 1)]
        L = dist_graph(grid, n, edges)
        result = connected_components(L)
        assert np.array_equal(result.labels.to_global(), np.zeros(n, dtype=np.int64))

    def test_multiple_chains(self, grid4):
        edges = [(0, 1), (1, 2), (5, 6), (8, 9), (9, 10)]
        L = dist_graph(grid4, 12, edges)
        got = connected_components(L).labels.to_global()
        assert np.array_equal(got, nx_labels(12, edges))

    def test_matches_networkx_on_random_graphs(self, grid):
        rng = np.random.default_rng(17)
        for trial in range(3):
            n = int(rng.integers(10, 60))
            m = int(rng.integers(0, n * 2))
            edges = set()
            for _ in range(m):
                u, v = rng.integers(0, n, 2)
                if u != v:
                    edges.add((min(u, v), max(u, v)))
            edges = sorted(edges)
            L = dist_graph(grid, n, edges)
            got = connected_components(L).labels.to_global()
            assert np.array_equal(got, nx_labels(n, edges)), f"trial {trial}"

    def test_isolated_vertices_are_own_components(self, grid4):
        L = dist_graph(grid4, 5, [(1, 2)])
        got = connected_components(L).labels.to_global()
        assert got[0] == 0 and got[3] == 3 and got[4] == 4
        assert got[1] == got[2] == 1

    def test_long_path_converges_in_log_rounds(self, grid4):
        n = 256
        edges = [(i, i + 1) for i in range(n - 1)]
        L = dist_graph(grid4, n, edges)
        result = connected_components(L)
        # hook + full pointer-jumping: far fewer than n rounds
        assert result.rounds <= 12

    def test_empty_graph(self, grid4):
        L = dist_graph(grid4, 6, [])
        got = connected_components(L).labels.to_global()
        assert np.array_equal(got, np.arange(6))


class TestContigSizes:
    def test_sizes_at_label_positions(self, grid4):
        edges = [(0, 1), (1, 2), (4, 5)]
        L = dist_graph(grid4, 7, edges)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels).to_global()
        assert sizes[0] == 3  # component {0,1,2}
        assert sizes[4] == 2  # component {4,5}
        assert sizes[3] == 1 and sizes[6] == 1  # singletons
        assert sizes.sum() == 7

    def test_reduce_scatter_used(self):
        """The paper names MPI_Reduce_scatter for this step."""
        from repro.mpi import ProcGrid, SimWorld, cori_haswell

        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        L = dist_graph(g, 8, [(0, 1)])
        labels = connected_components(L).labels
        before = {e.op for e in w.log.events}
        contig_sizes_distributed(labels)
        after = [e.op for e in w.log.events]
        assert "reduce_scatter" in after

    def test_grid_invariance(self):
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        edges = [(0, 1), (1, 2), (3, 4), (6, 7), (7, 8), (8, 9)]
        outs = []
        for p in (1, 4, 9, 16):
            g = ProcGrid(SimWorld(p, zero_cost()))
            L = dist_graph(g, 10, edges)
            labels = connected_components(L).labels
            sizes = contig_sizes_distributed(labels).to_global()
            outs.append((labels.to_global().tolist(), sizes.tolist()))
        assert all(o == outs[0] for o in outs[1:])
