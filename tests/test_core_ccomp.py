"""Unit tests for distributed connected components against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.core import connected_components, contig_sizes_distributed
from repro.core.ccomp import _shortcut_until_stable
from repro.sparse import DistSparseMatrix, DistVector


def dist_graph(grid, n, edges, dtype=np.int64):
    rows, cols = [], []
    for u, v in edges:
        rows += [u, v]
        cols += [v, u]
    return DistSparseMatrix.from_global_coo(
        grid, (n, n), np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), np.ones(len(rows), dtype=dtype),
    )


def nx_labels(n, edges):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    labels = np.empty(n, dtype=np.int64)
    for comp in nx.connected_components(g):
        root = min(comp)
        for v in comp:
            labels[v] = root
    return labels


class TestConnectedComponents:
    def test_single_path(self, grid):
        n = 20
        edges = [(i, i + 1) for i in range(n - 1)]
        L = dist_graph(grid, n, edges)
        result = connected_components(L)
        assert np.array_equal(result.labels.to_global(), np.zeros(n, dtype=np.int64))

    def test_multiple_chains(self, grid4):
        edges = [(0, 1), (1, 2), (5, 6), (8, 9), (9, 10)]
        L = dist_graph(grid4, 12, edges)
        got = connected_components(L).labels.to_global()
        assert np.array_equal(got, nx_labels(12, edges))

    def test_matches_networkx_on_random_graphs(self, grid):
        rng = np.random.default_rng(17)
        for trial in range(3):
            n = int(rng.integers(10, 60))
            m = int(rng.integers(0, n * 2))
            edges = set()
            for _ in range(m):
                u, v = rng.integers(0, n, 2)
                if u != v:
                    edges.add((min(u, v), max(u, v)))
            edges = sorted(edges)
            L = dist_graph(grid, n, edges)
            got = connected_components(L).labels.to_global()
            assert np.array_equal(got, nx_labels(n, edges)), f"trial {trial}"

    def test_isolated_vertices_are_own_components(self, grid4):
        L = dist_graph(grid4, 5, [(1, 2)])
        got = connected_components(L).labels.to_global()
        assert got[0] == 0 and got[3] == 3 and got[4] == 4
        assert got[1] == got[2] == 1

    def test_long_path_converges_in_log_rounds(self, grid4):
        n = 256
        edges = [(i, i + 1) for i in range(n - 1)]
        L = dist_graph(grid4, n, edges)
        result = connected_components(L)
        # hook + full pointer-jumping: far fewer than n rounds
        assert result.rounds <= 12

    def test_empty_graph(self, grid4):
        L = dist_graph(grid4, 6, [])
        got = connected_components(L).labels.to_global()
        assert np.array_equal(got, np.arange(6))


class TestContigSizes:
    def test_sizes_at_label_positions(self, grid4):
        edges = [(0, 1), (1, 2), (4, 5)]
        L = dist_graph(grid4, 7, edges)
        labels = connected_components(L).labels
        sizes = contig_sizes_distributed(labels).to_global()
        assert sizes[0] == 3  # component {0,1,2}
        assert sizes[4] == 2  # component {4,5}
        assert sizes[3] == 1 and sizes[6] == 1  # singletons
        assert sizes.sum() == 7

    def test_reduce_scatter_used(self):
        """The paper names MPI_Reduce_scatter for this step."""
        from repro.mpi import ProcGrid, SimWorld, cori_haswell

        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        L = dist_graph(g, 8, [(0, 1)])
        labels = connected_components(L).labels
        before = {e.op for e in w.log.events}
        contig_sizes_distributed(labels)
        after = [e.op for e in w.log.events]
        assert "reduce_scatter" in after

    def test_charges_do_not_scale_with_vertex_space(self):
        """Compacted counts: work and wire volume follow the number of
        distinct labels, not P * n (the old dense-bincount defect)."""
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        P, n = 16, 20_000
        w = SimWorld(P, zero_cost())
        g = ProcGrid(w)
        # one giant component plus one singleton: two distinct labels
        lab = np.zeros(n, dtype=np.int64)
        lab[-1] = n - 1
        labels = DistVector.from_global(g, lab)
        ops = []
        w.charge_compute = lambda rank, o, kind="default": ops.append(int(o))
        sizes = contig_sizes_distributed(labels)
        total_ops = sum(ops)
        # old implementation charged sum(blk + n) = n + P*n; the compacted
        # path is O(n + P * distinct)
        assert total_ops < 2 * n + 64 * P
        # the reduce_scatter now moves distinct-label counts, not n-vectors
        ev = [e for e in w.log.events if e.op == "reduce_scatter"][-1]
        assert ev.total_bytes <= 2 * 8 * P
        out = sizes.to_global()
        assert out[0] == n - 1 and out[n - 1] == 1 and out.sum() == n

    def test_shortcut_skips_stable_ranks(self, monkeypatch):
        """Ranks whose block is known stable stop gathering and stop being
        charged; the expected per-round charges are pinned exactly."""
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        w = SimWorld(4, zero_cost())
        g = ProcGrid(w)
        # rank 1 holds a 2-deep chain; ranks 0, 2, 3 already point at roots
        f = DistVector.from_global(
            g, np.array([0, 0, 1, 2, 4, 4, 4, 4], dtype=np.int64)
        )
        request_rounds = []
        in_gather = {"flag": False}
        orig_gather = DistVector.gather

        def spy_gather(self, requests):
            request_rounds.append([int(np.asarray(r).size) for r in requests])
            in_gather["flag"] = True
            try:
                return orig_gather(self, requests)
            finally:
                in_gather["flag"] = False

        charges = []
        orig_charge = w.charge_compute

        def spy_charge(rank, ops, kind="default"):
            if not in_gather["flag"]:
                charges.append((rank, int(ops)))
            return orig_charge(rank, ops, kind=kind)

        monkeypatch.setattr(DistVector, "gather", spy_gather)
        monkeypatch.setattr(w, "charge_compute", spy_charge)
        rounds = _shortcut_until_stable(f)
        assert rounds == 3
        assert np.array_equal(f.to_global(), [0, 0, 0, 0, 4, 4, 4, 4])
        # ranks 0, 2, 3 discover stability in round 1 and gather nothing after
        assert request_rounds == [[2, 2, 2, 2], [0, 2, 0, 0], [0, 2, 0, 0]]
        # one charge per rank actually comparing/jumping, none once stable
        assert charges == [(0, 2), (1, 2), (2, 2), (3, 2), (1, 2), (1, 2)]

    def test_grid_invariance(self):
        from repro.mpi import ProcGrid, SimWorld, zero_cost

        edges = [(0, 1), (1, 2), (3, 4), (6, 7), (7, 8), (8, 9)]
        outs = []
        for p in (1, 4, 9, 16):
            g = ProcGrid(SimWorld(p, zero_cost()))
            L = dist_graph(g, 10, edges)
            labels = connected_components(L).labels
            sizes = contig_sizes_distributed(labels).to_global()
            outs.append((labels.to_global().tolist(), sizes.tolist()))
        assert all(o == outs[0] for o in outs[1:])
