"""Unit tests for the 2D block-distributed sparse matrix."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DistributionError
from repro.mpi import ProcGrid, SimWorld, cori_haswell, zero_cost
from repro.sparse import DistSparseMatrix, arithmetic_semiring


def random_dist(grid, n, m, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    M = sp.random(n, m, density=density, random_state=rng, format="coo")
    return M, DistSparseMatrix.from_global_coo(grid, (n, m), M.row, M.col, M.data)


def dense_of(dist):
    r, c, v = dist.to_global_coo()
    out = np.zeros(dist.shape)
    out[r, c] = v
    return out


class TestDistribution:
    def test_roundtrip_any_grid(self, grid):
        M, dist = random_dist(grid, 23, 17, seed=3)
        assert np.allclose(dense_of(dist), M.toarray())
        assert dist.nnz() == M.nnz

    def test_blocks_cover_without_overlap(self, grid):
        _, dist = random_dist(grid, 23, 17, seed=4)
        total = sum(b.nnz for b in dist.blocks)
        assert total == dist.nnz()

    def test_block_shape_validation(self):
        w = SimWorld(4, zero_cost())
        g = ProcGrid(w)
        _, dist = random_dist(g, 10, 10)
        with pytest.raises(DistributionError):
            DistSparseMatrix(g, (10, 10), dist.blocks[:2])

    def test_from_rank_triples_routes_to_owners(self, grid):
        n = 11
        # every rank contributes the same diagonal; keep-first dedupe
        per_rank = [
            (np.arange(n), np.arange(n), np.full(n, float(r + 1)))
            for r in range(grid.nprocs)
        ]
        dist = DistSparseMatrix.from_rank_triples(
            grid, (n, n), per_rank, add_reduce=lambda v, s: v[s]
        )
        assert dist.nnz() == n
        d = dense_of(dist)
        assert np.allclose(np.diag(d), 1.0)


class TestLocalOps:
    def test_apply_transforms_with_global_coords(self, grid4):
        M, dist = random_dist(grid4, 9, 9, seed=5)
        out = dist.apply(lambda v, r, c: r * 100.0 + c)
        rr, cc, vv = out.to_global_coo()
        assert np.allclose(vv, rr * 100.0 + cc)

    def test_prune_removes_matching(self, grid4):
        M, dist = random_dist(grid4, 12, 12, seed=6)
        out = dist.prune(lambda v, r, c: r == c)
        rr, cc, _ = out.to_global_coo()
        assert np.all(rr != cc)

    def test_lookup_join_finds_aligned_entries(self, grid4):
        _, dist = random_dist(grid4, 10, 10, seed=7)
        joins = dist.lookup_join(dist)
        for (found, vals), blk in zip(joins, dist.blocks):
            assert found.all()
            assert np.allclose(vals, blk.vals)

    def test_lookup_join_misaligned_shapes_rejected(self, grid4):
        _, a = random_dist(grid4, 10, 10)
        _, b = random_dist(grid4, 11, 11)
        with pytest.raises(DistributionError):
            a.lookup_join(b)


class TestTranspose:
    def test_transpose_matches_scipy(self, grid):
        M, dist = random_dist(grid, 14, 9, seed=8)
        assert np.allclose(dense_of(dist.transpose()), M.toarray().T)

    def test_double_transpose_identity(self, grid4):
        M, dist = random_dist(grid4, 13, 13, seed=9)
        assert np.allclose(dense_of(dist.transpose().transpose()), M.toarray())

    def test_transpose_charges_ptp(self):
        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        _, dist = random_dist(g, 16, 16, seed=10)
        before = len(w.log)
        dist.transpose()
        ops = [e.op for e in w.log.events[before:]]
        assert "ptp" in ops


class TestSpgemm:
    def test_matches_scipy_all_grids(self, grid):
        rng = np.random.default_rng(11)
        A = sp.random(19, 23, density=0.15, random_state=rng, format="coo")
        B = sp.random(23, 17, density=0.15, random_state=rng, format="coo")
        dA = DistSparseMatrix.from_global_coo(grid, A.shape, A.row, A.col, A.data)
        dB = DistSparseMatrix.from_global_coo(grid, B.shape, B.row, B.col, B.data)
        dC = dA.spgemm(dB, arithmetic_semiring())
        assert np.allclose(dense_of(dC), (A @ B).toarray())

    def test_grid_size_invariance(self):
        """Results are bit-identical across P (invariant 3 of DESIGN.md)."""
        rng = np.random.default_rng(12)
        A = sp.random(21, 21, density=0.2, random_state=rng, format="coo")
        references = []
        for p in (1, 4, 9, 16):
            g = ProcGrid(SimWorld(p, zero_cost()))
            dA = DistSparseMatrix.from_global_coo(g, A.shape, A.row, A.col, A.data)
            dC = dA.spgemm(dA, arithmetic_semiring())
            references.append(dense_of(dC))
        for other in references[1:]:
            assert np.allclose(references[0], other)

    def test_inner_dim_mismatch(self, grid4):
        _, a = random_dist(grid4, 5, 6)
        _, b = random_dist(grid4, 5, 6)
        with pytest.raises(DistributionError):
            a.spgemm(b, arithmetic_semiring())

    def test_exclude_diagonal(self, grid4):
        _, a = random_dist(grid4, 8, 8, density=0.5, seed=13)
        c = a.spgemm(a, arithmetic_semiring(), exclude_diagonal=True)
        rr, cc, _ = c.to_global_coo()
        assert np.all(rr != cc)

    def test_spgemm_charges_compute_and_bcast(self):
        w = SimWorld(4, cori_haswell())
        g = ProcGrid(w)
        _, a = random_dist(g, 16, 16, density=0.4, seed=14)
        a.spgemm(a, arithmetic_semiring())
        assert w.clock.total_seconds() > 0
        assert w.log.total_bytes(op="bcast") > 0


class TestRowReduce:
    def test_degree_vector_matches_scipy(self, grid):
        M, dist = random_dist(grid, 25, 25, density=0.2, seed=15)
        deg = dist.row_reduce()
        expected = (M.toarray() != 0).sum(axis=1)
        assert np.array_equal(deg.to_global(), expected)

    def test_weighted_reduce(self, grid4):
        M, dist = random_dist(grid4, 10, 10, seed=16)
        sums = dist.row_reduce(value_func=lambda v: v)
        expected = M.toarray().sum(axis=1)
        # int64 bincount truncation does not apply: weights are float
        assert np.allclose(sums.to_global(), expected.astype(np.int64), atol=1.0)


class TestClearRowsAndCols:
    def test_masks_rows_and_columns(self, grid4):
        M, dist = random_dist(grid4, 12, 12, density=0.5, seed=17)
        masked = dist.clear_rows_and_cols(
            [np.array([3]), np.array([7]), np.array([], dtype=np.int64),
             np.array([], dtype=np.int64)]
        )
        rr, cc, _ = masked.to_global_coo()
        for bad in (3, 7):
            assert not np.any(rr == bad)
            assert not np.any(cc == bad)

    def test_indexing_unchanged(self, grid4):
        """Paper: "the indexing of the matrix does not change"."""
        _, dist = random_dist(grid4, 12, 12, seed=18)
        masked = dist.clear_rows_and_cols([np.array([0])] + [np.array([], dtype=np.int64)] * 3)
        assert masked.shape == dist.shape

    def test_empty_mask_is_noop(self, grid4):
        _, dist = random_dist(grid4, 12, 12, seed=19)
        masked = dist.clear_rows_and_cols(
            [np.array([], dtype=np.int64)] * grid4.nprocs
        )
        assert masked.nnz() == dist.nnz()
