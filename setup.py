"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks the
``wheel`` package needed for PEP 660 editable builds (pip falls back to the
classic ``setup.py develop`` path when no [build-system] table is declared).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Distributed-memory parallel contig generation for de novo "
        "long-read genome assembly (ELBA reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
