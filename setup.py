"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks the
``wheel`` package needed for PEP 660 editable builds (pip falls back to the
classic ``setup.py develop`` path when no [build-system] table is declared).

It also wires the **optional** native kernel extension
(``repro._native._kernels``): ``python setup.py build_ext --inplace``
compiles it against the numpy C API, and :mod:`repro.kernels` picks it up
as the ``native`` tier.  The build is failure-tolerant -- a host without a
C toolchain (or numpy headers) installs the pure-Python package unchanged
and the kernel registry falls back to the numpy tier.
"""

from setuptools import find_packages, setup
from setuptools.command.build_ext import build_ext


def _native_extensions():
    try:
        import numpy
        from setuptools import Extension
    except ImportError:
        return []
    return [
        Extension(
            "repro._native._kernels",
            sources=["src/repro/_native/kernels.c"],
            include_dirs=[numpy.get_include()],
        )
    ]


class optional_build_ext(build_ext):
    """Build the native tier when possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    def _skip(self, exc):
        print(
            f"WARNING: native kernel build skipped ({exc}); "
            "the numpy kernel tier will be used"
        )


setup(
    name="repro",
    version="1.2.0",
    description=(
        "Distributed-memory parallel contig generation for de novo "
        "long-read genome assembly (ELBA reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    ext_modules=_native_extensions(),
    cmdclass={"build_ext": optional_build_ext},
)
